"""Simulated QPU backends with queues and time flow (§8.2).

The paper patches Qiskit FakeBackends "with the ability to maintain their
own queue of scheduled jobs, job waiting and execution times, and the
notion of time flow". :class:`SimulatedQPU` is that patch: it wraps a
:class:`~repro.backends.qpu.QPU`, executes assigned jobs sequentially on a
simulated clock via the ground-truth execution model, and tracks the busy
time used for utilization and load metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..backends.qpu import QPU
from .execution import ExecutionModel, ExecutionRecord
from .job import JobStatus, QuantumJob

__all__ = ["SimulatedQPU"]


@dataclass
class SimulatedQPU:
    """One device's runtime state inside the cloud simulation."""

    qpu: QPU
    free_at: float = 0.0  # simulated time when the device next idles
    busy_seconds: float = 0.0
    jobs_executed: int = 0
    queue: list[QuantumJob] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.qpu.name

    @property
    def num_qubits(self) -> int:
        return self.qpu.num_qubits

    def waiting_seconds(self, now: float) -> float:
        """Current queue delay: how long a new job would wait to start."""
        return max(0.0, self.free_at - now)

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / elapsed)

    # ------------------------------------------------------------------
    def execute(
        self,
        job: QuantumJob,
        now: float,
        execution_model: ExecutionModel,
        rng: np.random.Generator,
    ) -> ExecutionRecord:
        """Run ``job`` as soon as the device frees up; updates job record."""
        record = execution_model.execute(
            job, self.qpu.calibration, self.qpu.model, rng
        )
        start = max(now, self.free_at)
        finish = start + record.quantum_seconds
        self.free_at = finish
        self.busy_seconds += record.quantum_seconds
        self.jobs_executed += 1

        job.status = JobStatus.COMPLETED
        job.start_time = start
        job.finish_time = finish
        job.assigned_qpu = self.name
        job.fidelity = record.fidelity
        job.quantum_seconds = record.quantum_seconds
        return record
