"""The fleet layer: shards and shard balancers for cloud-scale fleets.

A single scheduler over a 64-256 QPU fleet is the scaling wall the paper's
evaluation stops short of: the (jobs x QPUs) estimate matrices and the
NSGA-II decision space both grow with fleet size, so one scheduling cycle
gets slower exactly when load is heaviest.  Real cloud schedulers bound
both by partitioning the fleet.  A :class:`FleetShard` owns a subset of
QPUs plus its *own* scheduler/policy instance, pending queue, and
scheduling trigger; a :class:`ShardBalancer` routes each incoming quantum
job to one shard.  Per-shard matrices and decision spaces then stay
bounded by the shard width regardless of total fleet size.

Balancing strategies (all deterministic, so seeded runs reproduce):

* :class:`RoundRobinBalancer` — cycle through the shards that can fit the
  job's width.
* :class:`LeastLoadedBalancer` — route to the feasible shard with the
  least pending work (queued jobs plus device backlog).
* :class:`QubitFitBalancer` — route to the feasible shard with the
  tightest width fit, so narrow jobs keep wide devices free for wide jobs;
  ties break on pending load.

Every strategy restricts itself to shards owning at least one wide-enough
QPU; when *no* shard fits, the job is routed anyway (to the strategy's
pick over all shards) so the owning scheduler rejects it exactly like the
unsharded simulator would — keeping 1-shard runs bit-identical to
unsharded runs.
"""

from __future__ import annotations

from ..backends.qpu import QPU
from ..scheduler.triggers import SchedulingTrigger
from .backend_sim import SimulatedQPU
from .job import QuantumJob

__all__ = [
    "FleetShard",
    "ShardBalancer",
    "RoundRobinBalancer",
    "LeastLoadedBalancer",
    "QubitFitBalancer",
    "make_balancer",
    "partition_fleet",
]

#: Seconds of device backlog weighted like one pending job when comparing
#: shard loads (a typical job occupies a QPU for tens of seconds).
_BACKLOG_SECONDS_PER_JOB = 30.0


class FleetShard:
    """A fleet partition: some QPUs, one policy, one pending queue."""

    def __init__(
        self,
        shard_id: int,
        backends: list[SimulatedQPU],
        policy,
        trigger: SchedulingTrigger | None = None,
    ) -> None:
        if not backends:
            raise ValueError("a shard needs at least one QPU")
        self.shard_id = shard_id
        self.backends = backends
        self.policy = policy
        self.trigger = trigger or SchedulingTrigger()
        self.pending: list[QuantumJob] = []
        # Batched policies expose .schedule() (the Qonductor scheduler);
        # per-arrival baselines expose .assign().
        self.is_batched = hasattr(policy, "schedule")
        self.max_qubits = max(b.num_qubits for b in backends)
        self.jobs_routed = 0

    @property
    def qpus(self) -> list[QPU]:
        return [b.qpu for b in self.backends]

    def fits(self, job: QuantumJob) -> bool:
        """Whether any QPU in this shard is wide enough for ``job``."""
        return job.num_qubits <= self.max_qubits

    def waiting_map(self, now: float) -> dict[str, float]:
        return {b.name: b.waiting_seconds(now) for b in self.backends}

    def pending_load(self, now: float) -> float:
        """Pending work: queued jobs plus device backlog, in job units."""
        backlog = sum(b.waiting_seconds(now) for b in self.backends)
        return len(self.pending) + backlog / _BACKLOG_SECONDS_PER_JOB

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FleetShard(id={self.shard_id}, qpus={len(self.backends)}, "
            f"max_qubits={self.max_qubits}, pending={len(self.pending)})"
        )


class ShardBalancer:
    """Routes each arriving job to one shard.

    Subclasses implement :meth:`pick` over a non-empty candidate list;
    :meth:`route` narrows the candidates to width-feasible shards first
    and falls back to all shards when none fits (so the owning scheduler
    reports the job unschedulable, matching unsharded behavior).
    """

    name = "base"

    def route(
        self, job: QuantumJob, shards: list[FleetShard], now: float
    ) -> FleetShard:
        feasible = [s for s in shards if s.fits(job)]
        return self.pick(job, feasible or shards, now)

    def pick(
        self, job: QuantumJob, shards: list[FleetShard], now: float
    ) -> FleetShard:
        raise NotImplementedError


class RoundRobinBalancer(ShardBalancer):
    """Deterministic cycle over the feasible shards."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def pick(
        self, job: QuantumJob, shards: list[FleetShard], now: float
    ) -> FleetShard:
        shard = shards[self._next % len(shards)]
        self._next += 1
        return shard


class LeastLoadedBalancer(ShardBalancer):
    """Feasible shard with the least pending work; ties break on id."""

    name = "least_loaded"

    def pick(
        self, job: QuantumJob, shards: list[FleetShard], now: float
    ) -> FleetShard:
        return min(shards, key=lambda s: (s.pending_load(now), s.shard_id))


class QubitFitBalancer(ShardBalancer):
    """Feasible shard with the tightest width fit (locality routing).

    Narrow jobs land on narrow shards so wide shards keep capacity for
    the jobs only they can serve; among equal fits the least-loaded
    shard wins.
    """

    name = "qubit_fit"

    def pick(
        self, job: QuantumJob, shards: list[FleetShard], now: float
    ) -> FleetShard:
        return min(
            shards,
            key=lambda s: (
                s.max_qubits - job.num_qubits,
                s.pending_load(now),
                s.shard_id,
            ),
        )


_BALANCERS = {
    RoundRobinBalancer.name: RoundRobinBalancer,
    LeastLoadedBalancer.name: LeastLoadedBalancer,
    QubitFitBalancer.name: QubitFitBalancer,
}


def make_balancer(strategy: str | ShardBalancer) -> ShardBalancer:
    """Resolve a strategy name (or pass a balancer instance through)."""
    if isinstance(strategy, ShardBalancer):
        return strategy
    if strategy not in _BALANCERS:
        raise KeyError(
            f"unknown balancer {strategy!r}; choose from {sorted(_BALANCERS)}"
        )
    return _BALANCERS[strategy]()


def partition_fleet(fleet: list[QPU], num_shards: int) -> list[list[QPU]]:
    """Deal ``fleet`` into ``num_shards`` interleaved groups.

    Interleaving (shard ``i`` gets ``fleet[i::num_shards]``) spreads the
    quality/width gradient of the standard fleets across shards, so every
    shard holds both hot and cold devices.
    """
    if num_shards < 1:
        raise ValueError("need at least one shard")
    if num_shards > len(fleet):
        raise ValueError(
            f"cannot split {len(fleet)} QPUs into {num_shards} shards"
        )
    return [fleet[i::num_shards] for i in range(num_shards)]
