"""The fleet layer: shards and shard balancers for cloud-scale fleets.

A single scheduler over a 64-256 QPU fleet is the scaling wall the paper's
evaluation stops short of: the (jobs x QPUs) estimate matrices and the
NSGA-II decision space both grow with fleet size, so one scheduling cycle
gets slower exactly when load is heaviest.  Real cloud schedulers bound
both by partitioning the fleet.  A :class:`FleetShard` owns a subset of
QPUs plus its *own* scheduler/policy instance, pending queue, and
scheduling trigger; a :class:`ShardBalancer` routes each incoming quantum
job to one shard.  Per-shard matrices and decision spaces then stay
bounded by the shard width regardless of total fleet size.

Balancing strategies (all deterministic, so seeded runs reproduce):

* :class:`RoundRobinBalancer` — cycle through the shards that can fit the
  job's width.
* :class:`LeastLoadedBalancer` — route to the feasible shard with the
  least pending work (queued jobs plus device backlog).
* :class:`QubitFitBalancer` — route to the feasible shard with the
  tightest width fit, so narrow jobs keep wide devices free for wide jobs;
  ties break on pending load.

Every strategy restricts itself to shards owning at least one wide-enough
**online** QPU (devices go offline for maintenance and outages — see
:mod:`repro.cloud.availability`); when *no* shard fits, the job is routed
anyway (to the strategy's pick over all shards) so the owning scheduler
rejects it exactly like the unsharded simulator would — keeping 1-shard
runs bit-identical to unsharded runs.

Static partitions skew: under a narrow width distribution a qubit-fit
shard can saturate while others idle, and an outage can strand a shard's
pending queue.  A :class:`RebalancePolicy` periodically migrates pending
(not-yet-dispatched) jobs between shards — the simulator drives it from a
``REBALANCE`` heap event.  Two deterministic strategies:

* :class:`ThresholdRebalancePolicy` — while the deepest pending queue
  exceeds a feasible shard's queue by at least ``min_gap`` jobs, move one
  job at a time from the deepest to the shallowest feasible shard.
* :class:`StealHalfRebalancePolicy` — each (near-)idle shard steals half
  of the deepest feasible victim queue, classic work stealing.

Rebalancing is **off by default** (``rebalance=None``): single-shard runs
and rebalancing-disabled multi-shard runs stay bit-identical to the
static fleet layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..backends.qpu import QPU
from ..scheduler.triggers import SchedulingTrigger
from .backend_sim import SimulatedQPU
from .job import QuantumJob

__all__ = [
    "FleetShard",
    "ShardBalancer",
    "RoundRobinBalancer",
    "LeastLoadedBalancer",
    "QubitFitBalancer",
    "make_balancer",
    "partition_fleet",
    "Migration",
    "RebalancePolicy",
    "ThresholdRebalancePolicy",
    "StealHalfRebalancePolicy",
    "make_rebalancer",
]

#: Seconds of device backlog weighted like one pending job when comparing
#: shard loads (a typical job occupies a QPU for tens of seconds).
_BACKLOG_SECONDS_PER_JOB = 30.0

#: Extra load a load-comparing balancer charges a shard per pending job
#: of the *arriving* job's own tenant: a noisy tenant's burst spreads
#: across shards instead of piling one queue onto the same neighbors.
#: Only applies to tenant-tagged jobs, so untenanted runs are untouched.
_TENANT_SPREAD_PENALTY = 1.0


class FleetShard:
    """A fleet partition: some QPUs, one policy, one pending queue."""

    def __init__(
        self,
        shard_id: int,
        backends: list[SimulatedQPU],
        policy,
        trigger: SchedulingTrigger | None = None,
    ) -> None:
        if not backends:
            raise ValueError("a shard needs at least one QPU")
        self.shard_id = shard_id
        self.backends = backends
        self.policy = policy
        self.trigger = trigger or SchedulingTrigger()
        self.pending: list[QuantumJob] = []
        # Batched policies expose .schedule() (the Qonductor scheduler);
        # per-arrival baselines expose .assign().
        self.is_batched = hasattr(policy, "schedule")
        #: The pipelined engine's in-flight marker: the batch record of a
        #: cycle whose CYCLE_FOLD event has not popped yet, else ``None``.
        #: While set, new arrivals queue in ``pending`` for the *next*
        #: cycle and the shard's trigger pops are deferred to the fold.
        self.in_flight = None
        self.jobs_routed = 0
        # Work-stealing accounting (fed by RebalancePolicy moves).
        self.jobs_stolen_in = 0
        self.jobs_stolen_out = 0
        #: Widest QPU the shard *hardware* offers, online or not — the
        #: permanent-feasibility bound (see :meth:`fits_hardware`).
        self.hardware_max_qubits = max(b.num_qubits for b in backends)

    @property
    def qpus(self) -> list[QPU]:
        return [b.qpu for b in self.backends]

    @property
    def max_qubits(self) -> int:
        """Widest *online* QPU in the shard (0 when every QPU is down).

        Computed live so maintenance windows and outages flipping
        ``QPU.online`` mid-run immediately change what the shard can
        accept; with the whole shard offline nothing fits and balancers
        route around it.
        """
        return max(
            (b.num_qubits for b in self.backends if b.qpu.online), default=0
        )

    def fits(self, job: QuantumJob) -> bool:
        """Whether any *online* QPU in this shard is wide enough."""
        return job.num_qubits <= self.max_qubits

    def fits_hardware(self, job: QuantumJob) -> bool:
        """Whether any QPU here could *ever* serve ``job`` (offline
        devices count: they may recover while the job waits)."""
        return job.num_qubits <= self.hardware_max_qubits

    def waiting_map(self, now: float) -> dict[str, float]:
        return {b.name: b.waiting_seconds(now) for b in self.backends}

    def pending_load(self, now: float) -> float:
        """Pending work: queued jobs plus device backlog, in job units."""
        backlog = sum(b.waiting_seconds(now) for b in self.backends)
        return len(self.pending) + backlog / _BACKLOG_SECONDS_PER_JOB

    def tenant_pending(self, tenant_id: str) -> int:
        """How many of ``tenant_id``'s jobs sit in this pending queue."""
        return sum(1 for j in self.pending if j.tenant_id == tenant_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FleetShard(id={self.shard_id}, qpus={len(self.backends)}, "
            f"max_qubits={self.max_qubits}, pending={len(self.pending)})"
        )


class ShardBalancer:
    """Routes each arriving job to one shard.

    Subclasses implement :meth:`pick` over a non-empty candidate list;
    :meth:`route` narrows the candidates to width-feasible shards first
    and falls back to all shards when none fits (so the owning scheduler
    reports the job unschedulable, matching unsharded behavior).
    """

    name = "base"

    def route(
        self, job: QuantumJob, shards: list[FleetShard], now: float
    ) -> FleetShard:
        feasible = [s for s in shards if s.fits(job)]
        if not feasible:
            # Nothing fits *right now*.  Prefer shards whose hardware
            # could ever serve the job — a transiently-offline wide QPU
            # recovers, and a batched shard holds the job pending until
            # it does — before falling back to the full list (where the
            # owning scheduler rejects it, matching unsharded behavior).
            feasible = [s for s in shards if s.fits_hardware(job)]
        return self.pick(job, feasible or shards, now)

    def pick(
        self, job: QuantumJob, shards: list[FleetShard], now: float
    ) -> FleetShard:
        raise NotImplementedError


class RoundRobinBalancer(ShardBalancer):
    """Deterministic cycle over the feasible shards."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def pick(
        self, job: QuantumJob, shards: list[FleetShard], now: float
    ) -> FleetShard:
        shard = shards[self._next % len(shards)]
        self._next += 1
        return shard


def _tenant_adjusted_load(
    shard: FleetShard, job: QuantumJob, now: float
) -> float:
    """Pending load plus the tenant-spread penalty for ``job``'s tenant.

    Untenanted jobs (the default) add exactly nothing — the expression
    is never evaluated for them — so tenancy-off routing is bit-identical
    to plain ``pending_load``.
    """
    load = shard.pending_load(now)
    if job.tenant_id is not None:
        load += _TENANT_SPREAD_PENALTY * shard.tenant_pending(job.tenant_id)
    return load


class LeastLoadedBalancer(ShardBalancer):
    """Feasible shard with the least pending work; ties break on id.

    Tenant-tagged jobs see each shard's load inflated by the number of
    the *same tenant's* jobs already pending there
    (:data:`_TENANT_SPREAD_PENALTY` per job), so one noisy tenant's
    burst fans out across shards instead of burying a single queue.
    """

    name = "least_loaded"

    def pick(
        self, job: QuantumJob, shards: list[FleetShard], now: float
    ) -> FleetShard:
        return min(
            shards,
            key=lambda s: (_tenant_adjusted_load(s, job, now), s.shard_id),
        )


class QubitFitBalancer(ShardBalancer):
    """Feasible shard with the tightest width fit (locality routing).

    Narrow jobs land on narrow shards so wide shards keep capacity for
    the jobs only they can serve; among equal fits the least-loaded
    shard wins (tenant-adjusted, like :class:`LeastLoadedBalancer`).
    """

    name = "qubit_fit"

    def pick(
        self, job: QuantumJob, shards: list[FleetShard], now: float
    ) -> FleetShard:
        return min(
            shards,
            key=lambda s: (
                s.max_qubits - job.num_qubits,
                _tenant_adjusted_load(s, job, now),
                s.shard_id,
            ),
        )


_BALANCERS = {
    RoundRobinBalancer.name: RoundRobinBalancer,
    LeastLoadedBalancer.name: LeastLoadedBalancer,
    QubitFitBalancer.name: QubitFitBalancer,
}


def make_balancer(strategy: str | ShardBalancer) -> ShardBalancer:
    """Resolve a strategy name (or pass a balancer instance through)."""
    if isinstance(strategy, ShardBalancer):
        return strategy
    if strategy not in _BALANCERS:
        raise KeyError(
            f"unknown balancer {strategy!r}; choose from {sorted(_BALANCERS)}"
        )
    return _BALANCERS[strategy]()


def partition_fleet(fleet: list[QPU], num_shards: int) -> list[list[QPU]]:
    """Deal ``fleet`` into ``num_shards`` interleaved groups.

    Interleaving (shard ``i`` gets ``fleet[i::num_shards]``) spreads the
    quality/width gradient of the standard fleets across shards, so every
    shard holds both hot and cold devices.
    """
    if num_shards < 1:
        raise ValueError("need at least one shard")
    if num_shards > len(fleet):
        raise ValueError(
            f"cannot split {len(fleet)} QPUs into {num_shards} shards"
        )
    return [fleet[i::num_shards] for i in range(num_shards)]


# ---------------------------------------------------------------------------
# Work-stealing shard rebalancing
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Migration:
    """One pending job moved from ``src`` to ``dst`` by a rebalance cycle."""

    job: QuantumJob
    src: FleetShard
    dst: FleetShard


class RebalancePolicy:
    """Periodically migrates pending jobs between overloaded shards.

    Subclasses implement :meth:`rebalance`, which mutates the shards'
    pending queues directly and returns the moves for accounting.  Rules
    every strategy follows, so rebalanced runs stay deterministic and
    well-formed:

    * only *pending* (queued, not yet dispatched) jobs move — work
      already committed to a device queue stays put;
    * a job only moves to a shard where it currently fits (some online
      QPU is wide enough) and whose policy runs a batched pending queue;
    * ties break on shard id, and queues are scanned in a fixed order,
      so identical runs produce identical migrations.

    With ``tenant_aware=True``, strategies migrate the queue's
    *most-represented tenant's* jobs first (still newest-first within
    the tenant): the noisy tenant's backlog is what spreads, so quieter
    tenants queued behind it keep their position.  Off by default, and
    queues without tenant-tagged jobs always use the plain scan order,
    so untenanted runs are bit-identical either way.

    With ``react_to_outages=True``, the simulator additionally schedules
    an immediate rebalance check when an ``AVAILABILITY`` event takes a
    QPU offline, instead of stranding the affected shard's queue until
    the next periodic tick.  The check runs at the outage instant through
    the same deterministic :meth:`rebalance` path (after every
    same-instant availability flip has been folded, before any
    same-instant trigger), so seeded runs stay reproducible.  Off by
    default: purely periodic runs are bit-identical to before.
    """

    name = "base"

    def __init__(
        self,
        *,
        interval_seconds: float = 60.0,
        tenant_aware: bool = False,
        react_to_outages: bool = False,
    ) -> None:
        if interval_seconds <= 0:
            raise ValueError("interval_seconds must be > 0")
        self.interval_seconds = interval_seconds
        self.tenant_aware = tenant_aware
        self.react_to_outages = react_to_outages

    def rebalance(
        self, shards: list[FleetShard], now: float
    ) -> list[Migration]:
        raise NotImplementedError

    @staticmethod
    def _move(src: FleetShard, index: int, dst: FleetShard) -> Migration:
        job = src.pending.pop(index)
        dst.pending.append(job)
        src.jobs_stolen_out += 1
        dst.jobs_stolen_in += 1
        return Migration(job, src, dst)

    @staticmethod
    def _dominant_tenant(pending: list[QuantumJob]) -> str | None:
        """The tenant with the most jobs in ``pending`` (ties break on
        the lexicographically smallest id); ``None`` when untenanted."""
        counts: dict[str, int] = {}
        for job in pending:
            if job.tenant_id is not None:
                counts[job.tenant_id] = counts.get(job.tenant_id, 0) + 1
        if not counts:
            return None
        return min(counts, key=lambda tid: (-counts[tid], tid))

    def _tenant_scan_order(self, pending: list[QuantumJob]) -> list[int] | None:
        """Scan order for a tenant-aware drain of ``pending``.

        The dominant tenant's jobs come first (newest-first within the
        tenant), then everyone else newest-first.  ``None`` — meaning
        "use the plain scan" — when the queue holds no tenant-tagged
        jobs, so untenanted queues never change behavior.
        """
        if not self.tenant_aware:
            return None
        dominant = self._dominant_tenant(pending)
        if dominant is None:
            return None
        return sorted(
            range(len(pending)),
            key=lambda i: (
                0 if pending[i].tenant_id == dominant else 1,
                -i,
            ),
        )


class ThresholdRebalancePolicy(RebalancePolicy):
    """Drain depth gaps: deepest queue feeds the shallowest feasible one.

    While some shard's pending queue is at least ``min_gap`` jobs deeper
    than a feasible destination, move one job (newest first — the oldest
    jobs are closest to being scheduled locally) from the deepest such
    queue to the shallowest feasible queue.  A source whose jobs fit no
    eligible destination is skipped, not a stall: shallower shards with
    drainable gaps still drain.  Terminates because every move shrinks
    the gap it was chosen for.
    """

    name = "threshold"

    def __init__(
        self,
        *,
        min_gap: int = 4,
        interval_seconds: float = 60.0,
        tenant_aware: bool = False,
        react_to_outages: bool = False,
    ) -> None:
        super().__init__(
            interval_seconds=interval_seconds,
            tenant_aware=tenant_aware,
            react_to_outages=react_to_outages,
        )
        if min_gap < 2:
            raise ValueError("min_gap must be >= 2 (a 1-job gap ping-pongs)")
        self.min_gap = min_gap

    def rebalance(
        self, shards: list[FleetShard], now: float
    ) -> list[Migration]:
        moves: list[Migration] = []
        if len(shards) < 2:
            return moves
        received: dict[FleetShard, int] = {}
        # A job moves at most once per cycle: without this, a receiver
        # that becomes the deepest queue can bounce a just-migrated job
        # straight back, inflating the counters with net-zero churn (and
        # shifting receivers' appended tails out from under `received`).
        moved_ids: set[int] = set()
        # Online flags cannot flip inside one heap event: snapshot each
        # shard's online width once instead of re-deriving it via
        # fits() for every (job, destination) pair in the scan.
        width = {s.shard_id: s.max_qubits for s in shards}
        # Resumable tail scans, one batch per (source, width-cap) epoch.
        # Restarting the newest-first scan from the tail after every
        # single move made a deep-backlog tick O(moves x queue).  A job
        # is skipped exactly when it is wider than every eligible
        # destination, i.e. when ``job.num_qubits > cap`` where ``cap``
        # is the widest eligible destination — and while a source keeps
        # draining, its gaps only shrink, so ``cap`` never grows and a
        # skipped job stays skipped.  Each source therefore remembers
        # where its last scan stopped (``scan_pos``) and the cap it
        # scanned under (``scan_cap``); the scan resumes in place unless
        # the cap *grew* since (a wider destination became eligible —
        # only possible after other sources moved work around), which
        # resets it.  Decisions are identical to the restart-scan
        # algorithm (regression-tested against a reference
        # implementation in ``tests/test_fleet.py``); the cost drops to
        # one queue pass per cap epoch plus O(shards^2) per move.
        scan_pos: dict[int, int] = {}
        scan_cap: dict[int, int] = {}
        while True:
            moved = False
            # Deepest queue first, but a stuck source (its jobs fit no
            # gap-eligible destination) must not stall the rest of the
            # fleet — shallower shards with drainable gaps still drain.
            for src in sorted(
                shards, key=lambda s: (-len(s.pending), s.shard_id)
            ):
                # Gap eligibility is job-independent: hoist it so a
                # converged tick (no destination deep enough below any
                # source — the steady state) costs O(shards^2), not a
                # scan of every queue.
                eligible = [
                    s
                    for s in shards
                    if s is not src
                    and s.is_batched
                    and len(src.pending) - len(s.pending) >= self.min_gap
                ]
                if not eligible:
                    continue
                cap = max(width[s.shard_id] for s in eligible)
                sid = src.shard_id
                # Tenant-aware mode drains the dominant tenant's jobs
                # first; the order depends on the queue's current tenant
                # mix, so it is recomputed per move and the resumable
                # scan state is dropped (a later plain scan of the same
                # source restarts from the tail).  ``None`` — including
                # every untenanted queue — keeps the fast resumable path.
                tenant_order = self._tenant_scan_order(src.pending)
                if tenant_order is None:
                    if sid not in scan_cap or cap > scan_cap[sid]:
                        # First scan, or a wider destination became
                        # eligible: previously skipped jobs may fit now —
                        # rescan from the tail (just-received jobs up
                        # there are skipped in O(1) each via
                        # ``moved_ids``).
                        scan_pos[sid] = len(src.pending) - 1
                    scan_cap[sid] = cap
                    order = range(scan_pos[sid], -1, -1)
                else:
                    scan_pos.pop(sid, None)
                    scan_cap.pop(sid, None)
                    order = tenant_order
                for i in order:
                    job = src.pending[i]
                    if job.job_id in moved_ids:
                        continue
                    if job.num_qubits > cap:
                        continue
                    dsts = [
                        s
                        for s in eligible
                        if job.num_qubits <= width[s.shard_id]
                    ]
                    dst = min(
                        dsts, key=lambda s: (len(s.pending), s.shard_id)
                    )
                    moved_ids.add(job.job_id)
                    moves.append(self._move(src, i, dst))
                    received[dst] = received.get(dst, 0) + 1
                    if tenant_order is None:
                        scan_pos[sid] = i - 1
                    moved = True
                    break
                else:
                    if tenant_order is None:
                        scan_pos[sid] = -1  # queue exhausted under this cap
                if moved:
                    break
            if not moved:
                break
        # Newest-first pops appended each destination's tail in reverse;
        # restore arrival order among the migrated jobs so the receiving
        # FCFS batch serves them as they arrived.
        for dst, count in received.items():
            tail = dst.pending[-count:]
            tail.sort(key=lambda j: (j.arrival_time, j.job_id))
            dst.pending[-count:] = tail
        return moves


class StealHalfRebalancePolicy(RebalancePolicy):
    """Classic work stealing: idle shards steal half a victim's queue.

    Every shard whose pending queue is at most ``idle_threshold`` jobs
    deep (scanned in id order) picks the deepest other queue with at
    least ``min_victim_depth`` jobs *and at least one job the thief can
    serve*, then steals half of it — newest feasible jobs first,
    re-queued in their original arrival order.  Shards that received
    steals earlier in the same cycle are never victims, so a job moves
    at most once per tick.
    """

    name = "steal_half"

    def __init__(
        self,
        *,
        idle_threshold: int = 0,
        min_victim_depth: int = 4,
        interval_seconds: float = 60.0,
        tenant_aware: bool = False,
        react_to_outages: bool = False,
    ) -> None:
        super().__init__(
            interval_seconds=interval_seconds,
            tenant_aware=tenant_aware,
            react_to_outages=react_to_outages,
        )
        if min_victim_depth < 2:
            raise ValueError("min_victim_depth must be >= 2")
        self.idle_threshold = idle_threshold
        self.min_victim_depth = min_victim_depth

    def rebalance(
        self, shards: list[FleetShard], now: float
    ) -> list[Migration]:
        moves: list[Migration] = []
        if len(shards) < 2:
            return moves
        # Shards that already received steals this cycle are not victims:
        # a later thief re-stealing a just-stolen job would bounce work
        # twice in one tick and inflate the migration counters.
        receivers: set[int] = set()
        # Snapshot per-shard online width (constant within one event).
        width = {s.shard_id: s.max_qubits for s in shards}
        for thief in sorted(shards, key=lambda s: s.shard_id):
            if not thief.is_batched:
                continue
            if len(thief.pending) > self.idle_threshold:
                continue
            thief_width = width[thief.shard_id]
            # The victim is the deepest queue holding at least one job
            # the thief can serve: locking onto an infeasible deepest
            # queue (say, a wide backlog vs a narrow thief) would starve
            # the thief forever while feasible work queues elsewhere.
            candidates = [
                s
                for s in shards
                if s is not thief
                and s.shard_id not in receivers
                and len(s.pending) >= self.min_victim_depth
                and any(j.num_qubits <= thief_width for j in s.pending)
            ]
            if not candidates:
                continue
            victim = max(
                candidates, key=lambda s: (len(s.pending), -s.shard_id)
            )
            want = len(victim.pending) // 2
            # Tenant-aware steals drain the victim's dominant tenant
            # first (the noisy backlog is what spreads); untenanted
            # queues always take the plain newest-first path, keeping
            # tenancy-off runs bit-identical.
            tenant_order = self._tenant_scan_order(victim.pending)
            if tenant_order is None:
                indices = [
                    i
                    for i in range(len(victim.pending) - 1, -1, -1)
                    if victim.pending[i].num_qubits <= thief_width
                ][:want]
            else:
                indices = [
                    i
                    for i in tenant_order
                    if victim.pending[i].num_qubits <= thief_width
                ][:want]
            for i in sorted(indices, reverse=True):  # pop back to front
                moves.append(self._move(victim, i, thief))
            # Popping descending indices appended the stolen jobs in
            # reverse queue order; restore the victim's relative order
            # (plain path) or arrival order (tenant path, where the
            # picked index set is not contiguous in queue order).
            if indices:
                receivers.add(thief.shard_id)
                tail = thief.pending[-len(indices):]
                if tenant_order is None:
                    thief.pending[-len(indices):] = tail[::-1]
                else:
                    tail.sort(key=lambda j: (j.arrival_time, j.job_id))
                    thief.pending[-len(indices):] = tail
        return moves


_REBALANCERS = {
    ThresholdRebalancePolicy.name: ThresholdRebalancePolicy,
    StealHalfRebalancePolicy.name: StealHalfRebalancePolicy,
}


def make_rebalancer(strategy: str | RebalancePolicy) -> RebalancePolicy:
    """Resolve a strategy name (or pass a policy instance through)."""
    if isinstance(strategy, RebalancePolicy):
        return strategy
    if strategy not in _REBALANCERS:
        raise KeyError(
            f"unknown rebalancer {strategy!r}; "
            f"choose from {sorted(_REBALANCERS)}"
        )
    return _REBALANCERS[strategy]()
