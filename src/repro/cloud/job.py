"""Job and hybrid-application records flowing through the cloud simulator."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.metrics import CircuitMetrics, compute_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .tenancy import Tenant

__all__ = ["JobStatus", "QuantumJob", "HybridApplication", "feasibility_matrix"]


def feasibility_matrix(jobs, qpus, *, online_only: bool = True) -> np.ndarray:
    """(jobs x qpus) bool mask of width-feasible assignments.

    The single definition of the scheduling size constraint ``q_i <= s_k``;
    offline devices are infeasible unless ``online_only`` is disabled.
    """
    widths = np.array([j.num_qubits for j in jobs])
    caps = np.array(
        [q.num_qubits if (q.online or not online_only) else -1 for q in qpus]
    )
    return widths[:, None] <= caps[None, :]

_job_ids = itertools.count()
_app_ids = itertools.count()


class JobStatus(str, Enum):
    PENDING = "pending"
    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    #: Shed at the front door (rate limit / queue quota) — never routed.
    REJECTED = "rejected"


@dataclass
class QuantumJob:
    """One quantum execution request.

    Carries the structural metrics needed by the estimator and scheduler;
    the full circuit is optional (cloud-scale simulations drop it to keep
    memory flat, small-scale experiments keep it for real simulation).
    """

    metrics: CircuitMetrics
    shots: int
    mitigation: str = "none"  # a preset name from STANDARD_STACKS
    benchmark: str = "unknown"
    circuit: Circuit | None = None
    job_id: int = field(default_factory=lambda: next(_job_ids))
    #: Multi-tenancy (see :mod:`repro.cloud.tenancy`): the owning tenant
    #: (``None`` for untenanted runs — the default, which bypasses the
    #: front door entirely) and the degraded-to-best-effort flag an
    #: :class:`~repro.cloud.tenancy.AdmissionController` sets on
    #: queue-quota breaches.
    tenant: "Tenant | None" = None
    best_effort: bool = False

    # Lifecycle (filled in by the simulator / job manager):
    status: JobStatus = JobStatus.PENDING
    arrival_time: float = 0.0
    schedule_time: float | None = None
    start_time: float | None = None
    finish_time: float | None = None
    assigned_qpu: str | None = None
    fidelity: float | None = None
    quantum_seconds: float | None = None

    @classmethod
    def from_circuit(
        cls,
        circuit: Circuit,
        shots: int = 4000,
        mitigation: str = "none",
        *,
        keep_circuit: bool = True,
        benchmark: str | None = None,
    ) -> "QuantumJob":
        return cls(
            metrics=compute_metrics(circuit),
            shots=shots,
            mitigation=mitigation,
            benchmark=benchmark or circuit.metadata.get("benchmark", circuit.name),
            circuit=circuit if keep_circuit else None,
        )

    @property
    def num_qubits(self) -> int:
        return self.metrics.num_qubits

    @property
    def tenant_id(self) -> str | None:
        return self.tenant.tenant_id if self.tenant is not None else None

    @property
    def completion_time(self) -> float | None:
        """JCT: arrival -> finish (paper's metric (1))."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time

    @property
    def waiting_time(self) -> float | None:
        if self.start_time is None:
            return None
        return self.start_time - self.arrival_time


@dataclass
class HybridApplication:
    """A hybrid workflow instance: classical pre -> quantum -> classical post.

    The classical stages model the error-mitigation generation/inference
    steps of Fig. 1; their durations come from the execution model and run
    on (abundant) classical workers, so their waiting time is ~0 (§8.3).
    """

    quantum_job: QuantumJob
    pre_seconds: float = 0.0
    post_seconds: float = 0.0
    app_id: int = field(default_factory=lambda: next(_app_ids))
    arrival_time: float = 0.0
    finish_time: float | None = None

    @property
    def uses_mitigation(self) -> bool:
        return self.quantum_job.mitigation != "none"

    @property
    def tenant(self) -> "Tenant | None":
        return self.quantum_job.tenant

    @property
    def completion_time(self) -> float | None:
        if self.finish_time is None:
            return None
        return self.finish_time - self.arrival_time
