"""Cloud simulation substrate: jobs, the transpile proxy, the ground-truth
execution model, simulated backends, load generation, and the simulator."""

from .availability import (
    AvailabilityEvent,
    AvailabilityModel,
    MaintenanceWindow,
    flash_outage,
)
from .backend_sim import SimulatedQPU
from .cycle_executor import (
    CycleExecutor,
    CycleHandle,
    ProcessCycleExecutor,
    SerialCycleExecutor,
    ThreadCycleExecutor,
    make_cycle_executor,
)
from .execution import MITIGATION_EFFECTS, ExecutionModel, ExecutionRecord
from .fleet import (
    FleetShard,
    LeastLoadedBalancer,
    Migration,
    QubitFitBalancer,
    RebalancePolicy,
    RoundRobinBalancer,
    ShardBalancer,
    StealHalfRebalancePolicy,
    ThresholdRebalancePolicy,
    make_balancer,
    make_rebalancer,
    partition_fleet,
)
from .imbalance import QueueTrace, simulate_queue_imbalance
from .job import HybridApplication, JobStatus, QuantumJob, feasibility_matrix
from .loadgen import IBM_MEAN_RATE, IBM_RATE_BAND, LoadGenerator, diurnal_rate
from .metrics import SimulationMetrics, TimeSeries
from .proxy import AnalyticEstimateSource, ProxyEntry, TranspileProxy
from .simulator import CloudSimulator, SimulationConfig
from .tenancy import (
    BEST_EFFORT_TIER,
    AdmissionController,
    AdmissionDecision,
    Tenant,
    TenantShare,
    abusive_mix,
    effective_tier,
    jain_index,
    tier_preference,
    tier_sort,
)

__all__ = [
    "HybridApplication",
    "JobStatus",
    "QuantumJob",
    "feasibility_matrix",
    "AnalyticEstimateSource",
    "ProxyEntry",
    "TranspileProxy",
    "MITIGATION_EFFECTS",
    "ExecutionModel",
    "ExecutionRecord",
    "SimulatedQPU",
    "CycleExecutor",
    "CycleHandle",
    "SerialCycleExecutor",
    "ThreadCycleExecutor",
    "ProcessCycleExecutor",
    "make_cycle_executor",
    "FleetShard",
    "ShardBalancer",
    "RoundRobinBalancer",
    "LeastLoadedBalancer",
    "QubitFitBalancer",
    "make_balancer",
    "partition_fleet",
    "Migration",
    "RebalancePolicy",
    "ThresholdRebalancePolicy",
    "StealHalfRebalancePolicy",
    "make_rebalancer",
    "AvailabilityEvent",
    "AvailabilityModel",
    "MaintenanceWindow",
    "flash_outage",
    "IBM_MEAN_RATE",
    "IBM_RATE_BAND",
    "LoadGenerator",
    "diurnal_rate",
    "SimulationMetrics",
    "TimeSeries",
    "CloudSimulator",
    "SimulationConfig",
    "QueueTrace",
    "simulate_queue_imbalance",
    "BEST_EFFORT_TIER",
    "Tenant",
    "TenantShare",
    "AdmissionDecision",
    "AdmissionController",
    "abusive_mix",
    "effective_tier",
    "tier_sort",
    "tier_preference",
    "jain_index",
]
