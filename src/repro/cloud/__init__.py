"""Cloud simulation substrate: jobs, the transpile proxy, the ground-truth
execution model, simulated backends, load generation, and the simulator."""

from .job import HybridApplication, JobStatus, QuantumJob, feasibility_matrix
from .proxy import ProxyEntry, TranspileProxy
from .execution import (
    MITIGATION_EFFECTS,
    ExecutionModel,
    ExecutionRecord,
)
from .backend_sim import SimulatedQPU
from .loadgen import IBM_MEAN_RATE, IBM_RATE_BAND, LoadGenerator, diurnal_rate
from .metrics import SimulationMetrics, TimeSeries
from .simulator import CloudSimulator, SimulationConfig
from .imbalance import QueueTrace, simulate_queue_imbalance

__all__ = [
    "HybridApplication",
    "JobStatus",
    "QuantumJob",
    "feasibility_matrix",
    "ProxyEntry",
    "TranspileProxy",
    "MITIGATION_EFFECTS",
    "ExecutionModel",
    "ExecutionRecord",
    "SimulatedQPU",
    "IBM_MEAN_RATE",
    "IBM_RATE_BAND",
    "LoadGenerator",
    "diurnal_rate",
    "SimulationMetrics",
    "TimeSeries",
    "CloudSimulator",
    "SimulationConfig",
    "QueueTrace",
    "simulate_queue_imbalance",
]
