"""Transpilation-cost proxy.

Cloud-scale simulations schedule ~1500 jobs/hour; running the full
transpiler per (job, QPU) pair would dominate wall time without changing
the trends. Instead we calibrate, once per QPU model, how routing and
basis decomposition inflate two-qubit counts and durations — by running the
*real* transpiler on a probe grid — and interpolate.

The proxy therefore stays faithful to the actual compiler (it is fitted to
it) while costing O(1) per job.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backends.models import QPUModel
from ..circuits.metrics import CircuitMetrics
from ..simulation.noise import NoiseModel
from ..transpiler import Target, transpile
from ..workloads import qaoa_maxcut, random_circuit
from ..workloads.vqe import real_amplitudes

__all__ = ["TranspileProxy", "ProxyEntry"]


@dataclass(frozen=True)
class ProxyEntry:
    """Fitted inflation factors at one probe width."""

    width: int
    swap_inflation: float  # physical 2q gates / logical 2q gates
    depth_inflation: float
    ns_per_2q_layer: float  # schedule duration per two-qubit-depth unit


def _probes_for(cls: str, width: int) -> list:
    """Probe circuits matching one routing class at one width."""
    if cls == "linear":
        probes = []
        if width >= 3:
            probes.append(real_amplitudes(width, reps=2, seed=5))
        from ..workloads import ghz_linear

        probes.append(ghz_linear(max(2, width)))
        return probes
    if cls == "sparse":
        return [
            qaoa_maxcut(max(2, width), p_layers=1, seed=7),
            random_circuit(
                width,
                depth=max(2, width // 2),
                two_qubit_prob=0.3,
                seed=11,
                measure=True,
            ),
        ]
    # dense
    from ..workloads import qft

    probes = [
        random_circuit(
            width, depth=max(2, width), two_qubit_prob=0.6, seed=13, measure=True
        )
    ]
    if width <= 16:
        probes.append(qft(max(2, width), measure=True))
    return probes


class TranspileProxy:
    """Per-(model, routing-class) interpolation of transpilation overheads."""

    #: Probe widths; capped at each model's qubit count.
    PROBE_WIDTHS = (2, 4, 8, 12, 16, 20, 27)
    CLASSES = ("linear", "sparse", "dense")

    #: Probe calibration is deterministic per (model, class) — fixed probe
    #: seeds, deterministic transpiler — so tables are shared process-wide
    #: instead of being re-fitted by every proxy instance.
    _SHARED_TABLES: dict[tuple[str, str], list[ProxyEntry]] = {}

    def __init__(self, *, share_tables: bool = True) -> None:
        self._tables: dict[tuple[str, str], list[ProxyEntry]] = (
            self._SHARED_TABLES if share_tables else {}
        )
        #: Memo of :meth:`physical_metrics` keyed on the metrics fingerprint
        #: and model name (the proxy is calibration-independent, so entries
        #: never go stale).
        self._pm_cache: dict[tuple, tuple[float, float, float]] = {}

    def _calibrate(self, model: QPUModel, cls: str) -> list[ProxyEntry]:
        nm = NoiseModel.uniform(
            model.num_qubits,
            edges=list(model.coupling),
            duration_2q_ns=model.duration_2q_ns,
            duration_1q_ns=model.duration_1q_ns,
        )
        target = Target(
            num_qubits=model.num_qubits,
            coupling=model.coupling,
            basis_gates=model.basis_gates,
            noise_model=nm,
        )
        entries: list[ProxyEntry] = []
        for width in self.PROBE_WIDTHS:
            if width > model.num_qubits:
                break
            sw, dp, ns = [], [], []
            for probe in _probes_for(cls, width):
                res = transpile(probe, target)
                logical_2q = max(1, sum(
                    1 for g in probe.ops if g.is_unitary and g.num_qubits == 2
                ))
                sw.append(res.metrics.num_2q_gates / logical_2q)
                dp.append(
                    max(1, res.metrics.two_qubit_depth)
                    / max(1, probe.depth(two_qubit_only=True))
                )
                two_q_depth = max(1, res.metrics.two_qubit_depth)
                ns.append(
                    max(0.0, res.duration_ns - model.readout_duration_ns)
                    / two_q_depth
                )
            entries.append(
                ProxyEntry(
                    width=width,
                    swap_inflation=float(np.mean(sw)),
                    depth_inflation=float(np.mean(dp)),
                    ns_per_2q_layer=float(np.mean(ns)),
                )
            )
        return entries

    @staticmethod
    def _table_key(model: QPUModel, cls: str) -> tuple:
        # Name alone is not guaranteed unique across model variants; include
        # the parameters the probe fits actually depend on.
        return (
            model.name,
            model.num_qubits,
            model.duration_2q_ns,
            model.duration_1q_ns,
            cls,
        )

    def table(self, model: QPUModel, cls: str = "sparse") -> list[ProxyEntry]:
        key = self._table_key(model, cls)
        if key not in self._tables:
            self._tables[key] = self._calibrate(model, cls)
        return self._tables[key]

    # ------------------------------------------------------------------
    def physical_metrics(
        self, metrics: CircuitMetrics, model: QPUModel
    ) -> tuple[float, float, float]:
        """(physical_2q_gates, physical_1q_gates, duration_ns) estimates."""
        key = (metrics.fingerprint, self._table_key(model, metrics.routing_class))
        cached = self._pm_cache.get(key)
        if cached is not None:
            return cached
        result = self._physical_metrics_uncached(metrics, model)
        self._pm_cache[key] = result
        return result

    def _physical_metrics_uncached(
        self, metrics: CircuitMetrics, model: QPUModel
    ) -> tuple[float, float, float]:
        table = self.table(model, metrics.routing_class)
        widths = np.array([e.width for e in table], dtype=float)
        w = float(min(metrics.num_qubits, widths[-1]))
        swap = float(np.interp(w, widths, [e.swap_inflation for e in table]))
        depth_infl = float(np.interp(w, widths, [e.depth_inflation for e in table]))
        ns_layer = float(np.interp(w, widths, [e.ns_per_2q_layer for e in table]))
        phys_2q = metrics.num_2q_gates * swap
        # Basis decomposition roughly doubles 1q count (ZYZ resynthesis) and
        # each inserted swap adds 3 CX worth of 1q dressing.
        phys_1q = metrics.num_1q_gates * 2.0 + 6.0 * max(
            0.0, phys_2q - metrics.num_2q_gates
        )
        two_q_depth = max(1.0, metrics.two_qubit_depth * depth_infl)
        duration_ns = two_q_depth * ns_layer + model.readout_duration_ns
        return phys_2q, phys_1q, duration_ns
