"""Transpilation-cost and estimation proxies.

Cloud-scale simulations schedule ~1500 jobs/hour; running the full
transpiler per (job, QPU) pair would dominate wall time without changing
the trends. Instead we calibrate, once per QPU model, how routing and
basis decomposition inflate two-qubit counts and durations — by running the
*real* transpiler on a probe grid — and interpolate.

The proxy therefore stays faithful to the actual compiler (it is fitted to
it) while costing O(1) per job.

:class:`AnalyticEstimateSource` is the estimation-side counterpart: an
:class:`~repro.estimator.source.EstimateSource` that scores whole job
blocks with the closed-form ESP model (batched through the array-ops
backend) instead of trained regressors — the cheap analytic proxy for
runs that skip estimator training.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backends.models import QPUModel
from ..backends.qpu import QPU
from ..circuits.metrics import CircuitMetrics
from ..simulation.array_ops import ArrayBackend, make_array_backend
from ..simulation.esp import esp_components_batch, esp_to_hellinger_batch
from ..simulation.noise import NoiseModel
from ..transpiler import Target, transpile
from ..workloads import qaoa_maxcut, random_circuit
from ..workloads.vqe import real_amplitudes
from .job import QuantumJob, feasibility_matrix

__all__ = ["TranspileProxy", "ProxyEntry", "AnalyticEstimateSource"]


@dataclass(frozen=True)
class ProxyEntry:
    """Fitted inflation factors at one probe width."""

    width: int
    swap_inflation: float  # physical 2q gates / logical 2q gates
    depth_inflation: float
    ns_per_2q_layer: float  # schedule duration per two-qubit-depth unit


def _probes_for(cls: str, width: int) -> list:
    """Probe circuits matching one routing class at one width."""
    if cls == "linear":
        probes = []
        if width >= 3:
            probes.append(real_amplitudes(width, reps=2, seed=5))
        from ..workloads import ghz_linear

        probes.append(ghz_linear(max(2, width)))
        return probes
    if cls == "sparse":
        return [
            qaoa_maxcut(max(2, width), p_layers=1, seed=7),
            random_circuit(
                width,
                depth=max(2, width // 2),
                two_qubit_prob=0.3,
                seed=11,
                measure=True,
            ),
        ]
    # dense
    from ..workloads import qft

    probes = [
        random_circuit(
            width, depth=max(2, width), two_qubit_prob=0.6, seed=13, measure=True
        )
    ]
    if width <= 16:
        probes.append(qft(max(2, width), measure=True))
    return probes


class TranspileProxy:
    """Per-(model, routing-class) interpolation of transpilation overheads."""

    #: Probe widths; capped at each model's qubit count.
    PROBE_WIDTHS = (2, 4, 8, 12, 16, 20, 27)
    CLASSES = ("linear", "sparse", "dense")

    #: Probe calibration is deterministic per (model, class) — fixed probe
    #: seeds, deterministic transpiler — so tables are shared process-wide
    #: instead of being re-fitted by every proxy instance.
    _SHARED_TABLES: dict[tuple[str, str], list[ProxyEntry]] = {}

    def __init__(self, *, share_tables: bool = True) -> None:
        self._tables: dict[tuple[str, str], list[ProxyEntry]] = (
            self._SHARED_TABLES if share_tables else {}
        )
        #: Memo of :meth:`physical_metrics` keyed on the metrics fingerprint
        #: and model name (the proxy is calibration-independent, so entries
        #: never go stale).
        self._pm_cache: dict[tuple, tuple[float, float, float]] = {}

    def _calibrate(self, model: QPUModel, cls: str) -> list[ProxyEntry]:
        nm = NoiseModel.uniform(
            model.num_qubits,
            edges=list(model.coupling),
            duration_2q_ns=model.duration_2q_ns,
            duration_1q_ns=model.duration_1q_ns,
        )
        target = Target(
            num_qubits=model.num_qubits,
            coupling=model.coupling,
            basis_gates=model.basis_gates,
            noise_model=nm,
        )
        entries: list[ProxyEntry] = []
        for width in self.PROBE_WIDTHS:
            if width > model.num_qubits:
                break
            sw, dp, ns = [], [], []
            for probe in _probes_for(cls, width):
                res = transpile(probe, target)
                logical_2q = max(1, sum(
                    1 for g in probe.ops if g.is_unitary and g.num_qubits == 2
                ))
                sw.append(res.metrics.num_2q_gates / logical_2q)
                dp.append(
                    max(1, res.metrics.two_qubit_depth)
                    / max(1, probe.depth(two_qubit_only=True))
                )
                two_q_depth = max(1, res.metrics.two_qubit_depth)
                ns.append(
                    max(0.0, res.duration_ns - model.readout_duration_ns)
                    / two_q_depth
                )
            entries.append(
                ProxyEntry(
                    width=width,
                    swap_inflation=float(np.mean(sw)),
                    depth_inflation=float(np.mean(dp)),
                    ns_per_2q_layer=float(np.mean(ns)),
                )
            )
        return entries

    @staticmethod
    def _table_key(model: QPUModel, cls: str) -> tuple:
        # Name alone is not guaranteed unique across model variants; include
        # the parameters the probe fits actually depend on.
        return (
            model.name,
            model.num_qubits,
            model.duration_2q_ns,
            model.duration_1q_ns,
            cls,
        )

    def table(self, model: QPUModel, cls: str = "sparse") -> list[ProxyEntry]:
        key = self._table_key(model, cls)
        if key not in self._tables:
            self._tables[key] = self._calibrate(model, cls)
        return self._tables[key]

    # ------------------------------------------------------------------
    def physical_metrics(
        self, metrics: CircuitMetrics, model: QPUModel
    ) -> tuple[float, float, float]:
        """(physical_2q_gates, physical_1q_gates, duration_ns) estimates."""
        key = (metrics.fingerprint, self._table_key(model, metrics.routing_class))
        cached = self._pm_cache.get(key)
        if cached is not None:
            return cached
        result = self._physical_metrics_uncached(metrics, model)
        self._pm_cache[key] = result
        return result

    def _physical_metrics_uncached(
        self, metrics: CircuitMetrics, model: QPUModel
    ) -> tuple[float, float, float]:
        table = self.table(model, metrics.routing_class)
        widths = np.array([e.width for e in table], dtype=float)
        w = float(min(metrics.num_qubits, widths[-1]))
        swap = float(np.interp(w, widths, [e.swap_inflation for e in table]))
        depth_infl = float(np.interp(w, widths, [e.depth_inflation for e in table]))
        ns_layer = float(np.interp(w, widths, [e.ns_per_2q_layer for e in table]))
        phys_2q = metrics.num_2q_gates * swap
        # Basis decomposition roughly doubles 1q count (ZYZ resynthesis) and
        # each inserted swap adds 3 CX worth of 1q dressing.
        phys_1q = metrics.num_1q_gates * 2.0 + 6.0 * max(
            0.0, phys_2q - metrics.num_2q_gates
        )
        two_q_depth = max(1.0, metrics.two_qubit_depth * depth_infl)
        duration_ns = two_q_depth * ns_layer + model.readout_duration_ns
        return phys_2q, phys_1q, duration_ns


class AnalyticEstimateSource:
    """Closed-form ESP scoring of (job, QPU) blocks.

    An :class:`~repro.estimator.source.EstimateSource` whose
    :meth:`estimate_block` evaluates the analytic error-suppression
    probability of every feasible pair in one batched
    :func:`~repro.simulation.esp.esp_components_batch` call per QPU —
    fidelity is the Hellinger-adjusted ESP, runtime the schedule duration
    plugged into the cloud shot/setup cost model.  Jobs must retain their
    circuits (``keep_circuit=True``); cloud-scale streams that drop them
    should use the trained estimator instead.
    """

    name = "analytic_esp"

    def __init__(self, backend: ArrayBackend | str | None = None) -> None:
        self.array_backend = make_array_backend(backend)

    def __call__(self, job: QuantumJob, qpu: QPU) -> tuple[float, float]:
        fid, sec = self.estimate_block([job], [qpu])
        return float(fid[0, 0]), float(sec[0, 0])

    def estimate_block(
        self,
        jobs: list[QuantumJob],
        qpus: list[QPU],
        feasible: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(fidelity, exec_seconds) matrices over ``jobs`` x ``qpus``.

        Infeasible pairs stay zero and are never evaluated (the ESP walk
        indexes the QPU's noise arrays by circuit qubit, so feasibility
        also guards the width bound).
        """
        # Imported lazily: execution imports this module at load time.
        from .execution import SHOT_OVERHEAD_US, QPU_SETUP_SECONDS

        n, m = len(jobs), len(qpus)
        fid = np.zeros((n, m))
        sec = np.zeros((n, m))
        if feasible is None:
            feasible = feasibility_matrix(jobs, qpus)
        widths = np.array([j.num_qubits for j in jobs], dtype=int)
        shots = np.array([j.shots for j in jobs], dtype=float)
        for k, qpu in enumerate(qpus):
            idx = np.flatnonzero(feasible[:, k])
            if idx.size == 0:
                continue
            circuits = []
            for i in idx:
                if jobs[i].circuit is None:
                    raise ValueError(
                        "AnalyticEstimateSource needs job circuits; job "
                        f"{jobs[i].job_id} was created with keep_circuit=False"
                    )
                circuits.append(jobs[i].circuit)
            comps = esp_components_batch(
                circuits, qpu.noise_model, backend=self.array_backend
            )
            esp_values = np.exp(
                comps["gate"] + comps["readout"] + comps["decoherence"]
            )
            fid[idx, k] = esp_to_hellinger_batch(esp_values, widths[idx])
            per_shot_s = comps["duration_ns"] / 1e9 + SHOT_OVERHEAD_US / 1e6
            sec[idx, k] = QPU_SETUP_SECONDS + shots[idx] * per_shot_s
        return fid, sec

    def on_recalibration(self, qpus: list[QPU]) -> None:
        """Stateless: nothing to invalidate, fresh noise models are read
        from the QPUs on every block."""
