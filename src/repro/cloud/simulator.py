"""The quantum-cloud simulator (§8.2).

Drives simulated time over a stream of hybrid applications: classical
pre-processing starts immediately on (abundant) classical workers, quantum
jobs enter the scheduler's pending queue, scheduling fires on the paper's
queue/time triggers (Qonductor) or per-arrival (baselines), and assigned
jobs execute on :class:`SimulatedQPU` backends with ground-truth outcomes.

Metrics sampled over time: mean fidelity, mean end-to-end completion time,
mean QPU utilization, and the scheduler's pending-queue size (Figs. 6, 8,
9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backends.qpu import QPU
from ..scheduler.triggers import SchedulingTrigger
from .backend_sim import SimulatedQPU
from .execution import ExecutionModel
from .job import HybridApplication, JobStatus
from .metrics import SimulationMetrics

__all__ = ["CloudSimulator", "SimulationConfig"]


@dataclass
class SimulationConfig:
    """Knobs of one simulation run."""

    duration_seconds: float = 3600.0
    sample_every_seconds: float = 120.0
    recalibrate_every_seconds: float | None = None
    seed: int = 0


class CloudSimulator:
    """Batched-trigger (Qonductor) or per-arrival (baseline) cloud sim."""

    def __init__(
        self,
        fleet: list[QPU],
        policy,
        execution_model: ExecutionModel | None = None,
        *,
        trigger: SchedulingTrigger | None = None,
        config: SimulationConfig | None = None,
    ) -> None:
        self.backends = [SimulatedQPU(q) for q in fleet]
        self.policy = policy
        self.config = config or SimulationConfig()
        self.execution_model = execution_model or ExecutionModel(
            seed=self.config.seed
        )
        self.trigger = trigger or SchedulingTrigger()
        # Batched policies expose .schedule() (the Qonductor scheduler);
        # per-arrival baselines expose .assign().
        self.is_batched = hasattr(policy, "schedule")
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def _waiting_map(self, now: float) -> dict[str, float]:
        return {b.name: b.waiting_seconds(now) for b in self.backends}

    def _dispatch(self, job, qpu_name: str, now: float, apps_by_job: dict) -> None:
        backend = next(b for b in self.backends if b.name == qpu_name)
        record = backend.execute(job, now, self.execution_model, self._rng)
        app = apps_by_job.get(job.job_id)
        if app is not None:
            app.pre_seconds = record.classical_pre_seconds
            app.post_seconds = record.classical_post_seconds
            # Classical post-processing starts right after the quantum part;
            # classical waiting is ~zero (thousands of workers available).
            app.finish_time = job.finish_time + record.classical_post_seconds

    def _schedule_batch(self, pending: list, now: float, metrics, apps_by_job) -> list:
        """Run one Qonductor cycle; returns jobs still unschedulable."""
        qpus = [b.qpu for b in self.backends]
        schedule = self.policy.schedule(pending, qpus, self._waiting_map(now))
        metrics.scheduling_cycles += 1
        for dec in schedule.decisions:
            dec.job.schedule_time = now
            self._dispatch(dec.job, dec.qpu_name, now, apps_by_job)
        metrics.unschedulable_jobs += len(schedule.unschedulable)
        for job in schedule.unschedulable:
            job.status = JobStatus.FAILED
        return []

    def _schedule_immediate(self, jobs: list, now: float, metrics, apps_by_job) -> None:
        qpus = [b.qpu for b in self.backends]
        for job, qpu_name in self.policy.assign(jobs, qpus, self._waiting_map(now)):
            metrics.scheduling_cycles += 1
            if qpu_name is None:
                job.status = JobStatus.FAILED
                metrics.unschedulable_jobs += 1
                continue
            job.schedule_time = now
            self._dispatch(job, qpu_name, now, apps_by_job)

    # ------------------------------------------------------------------
    def run(self, apps: list[HybridApplication]) -> SimulationMetrics:
        """Simulate the full application stream; returns collected metrics."""
        cfg = self.config
        metrics = SimulationMetrics()
        apps = sorted(apps, key=lambda a: a.arrival_time)
        apps_by_job = {a.quantum_job.job_id: a for a in apps}
        pending: list = []
        next_sample = cfg.sample_every_seconds
        next_recal = (
            cfg.recalibrate_every_seconds
            if cfg.recalibrate_every_seconds
            else float("inf")
        )
        idx = 0
        now = 0.0
        finished_fids: list[tuple[float, float]] = []  # (finish_time, fidelity)

        def sample(t: float) -> None:
            done = [
                a
                for a in apps[:idx]
                if a.finish_time is not None and a.finish_time <= t
            ]
            if done:
                metrics.mean_fidelity.add(
                    t,
                    float(
                        np.mean(
                            [
                                a.quantum_job.fidelity
                                for a in done
                                if a.quantum_job.fidelity is not None
                            ]
                        )
                    ),
                )
                metrics.mean_completion_time.add(
                    t, float(np.mean([a.completion_time for a in done]))
                )
            busy = [
                max(0.0, b.busy_seconds - max(0.0, b.free_at - t)) for b in self.backends
            ]
            metrics.mean_utilization.add(
                t, float(np.mean([min(1.0, bu / max(t, 1e-9)) for bu in busy]))
            )
            metrics.scheduler_queue_size.add(t, len(pending))

        while now < cfg.duration_seconds:
            t_arrival = (
                apps[idx].arrival_time if idx < len(apps) else float("inf")
            )
            t_trigger = (
                self.trigger.next_deadline(now) if self.is_batched else float("inf")
            )
            t_next = min(t_arrival, t_trigger, next_sample, next_recal,
                         cfg.duration_seconds)
            now = t_next

            if now >= cfg.duration_seconds:
                break
            if now == next_recal:
                for b in self.backends:
                    b.qpu.recalibrate(timestamp=now)
                if hasattr(self.policy, "on_recalibration"):
                    self.policy.on_recalibration([b.qpu for b in self.backends])
                next_recal += cfg.recalibrate_every_seconds
                continue
            if now == next_sample:
                sample(now)
                next_sample += cfg.sample_every_seconds
                continue
            if now == t_arrival:
                app = apps[idx]
                idx += 1
                job = app.quantum_job
                job.status = JobStatus.QUEUED
                if self.is_batched:
                    pending.append(job)
                    if self.trigger.should_fire(len(pending), now):
                        pending = self._schedule_batch(
                            pending, now, metrics, apps_by_job
                        )
                        self.trigger.fired(now)
                else:
                    self._schedule_immediate([job], now, metrics, apps_by_job)
                continue
            if self.is_batched and now == t_trigger:
                if self.trigger.should_fire(len(pending), now):
                    pending = self._schedule_batch(pending, now, metrics, apps_by_job)
                self.trigger.fired(now)

        # Final flush and bookkeeping.
        if self.is_batched and pending:
            pending = self._schedule_batch(
                pending, cfg.duration_seconds, metrics, apps_by_job
            )
        sample(cfg.duration_seconds)
        metrics.completed_jobs = sum(
            1 for a in apps if a.quantum_job.status == JobStatus.COMPLETED
        )
        for b in self.backends:
            metrics.per_qpu_busy_seconds[b.name] = b.busy_seconds
            metrics.per_qpu_jobs[b.name] = b.jobs_executed
        return metrics
