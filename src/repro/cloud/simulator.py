"""The quantum-cloud simulator (§8.2) — sharded, event-driven core.

Drives simulated time over a stream of hybrid applications with a heap
event queue: arrivals, application completions, scheduling-trigger
deadlines, metric samples, and recalibration cycles are discrete events,
so wall-clock cost scales with the number of events rather than with
simulated seconds.

The fleet is organized as one or more :class:`~repro.cloud.fleet.FleetShard`
partitions, each owning a subset of QPUs plus its own scheduler/policy
instance, pending queue, and trigger; a
:class:`~repro.cloud.fleet.ShardBalancer` routes every arriving quantum
job to one shard.  All shards share the single event heap: trigger
deadlines carry their shard index, completions feed fleet-wide running
aggregates, and metric samples merge shard states (with per-shard queue
breakdowns).  A 1-shard simulator is the unsharded configuration and
reproduces it exactly.

Arrivals are *pulled*: :meth:`CloudSimulator.run` accepts either a
pre-built application list or a lazy, time-ordered iterator (see
:meth:`LoadGenerator.iter_arrivals`); only the next pending arrival plus
the in-flight applications are held in memory, so peak memory is
independent of how many jobs the run streams through.

Completion events fold into running sums/counts (not per-completion
lists), so each metric sample costs O(backends) time and the aggregate
state is O(1) memory no matter how many applications finish.  Metrics
sampled over time: mean fidelity, mean end-to-end completion time, mean
QPU utilization, and the pending-queue sizes (Figs. 6, 8, 9).

Two optional subsystems make the fleet *adaptive*:

* **Dynamic availability** — an
  :class:`~repro.cloud.availability.AvailabilityModel` pre-computes
  maintenance windows and random outage/recovery flips; ``AVAILABILITY``
  events toggle ``QPU.online`` mid-run and every routing/scheduling
  layer is online-aware.  In-flight work keeps its committed finish time.
* **Work stealing** — a
  :class:`~repro.cloud.fleet.RebalancePolicy` runs on periodic
  ``REBALANCE`` events, migrating pending jobs from overloaded shards to
  feasible underloaded ones.  Both are off by default, leaving static
  runs bit-identical.

**The pipelined scheduling engine:** a firing TRIGGER batch runs each
due shard's pre-processing on the main thread (prefetching estimates
through the shared cache), submits the pure optimization stage to a
:class:`~repro.cloud.cycle_executor.CycleExecutor` (serial / thread /
process — serial is the default), and pushes a ``CYCLE_FOLD`` heap event
at ``t_trigger + latency_model(batch)``; when that event pops, results
fold back in shard-id order so metrics, RNG draws, heap pushes, and
estimate-cache updates are identical on every backend.  Three knobs:

* ``cycle_latency`` — the modeled scheduler runtime (seconds, or a
  callable over the batch's tasks, e.g.
  :class:`~repro.scheduler.cycle.NsgaCycleLatencyModel`).  The fold
  instant is *simulated* time, never wall-clock, so nonzero-latency runs
  are deterministic by construction and seeded runs reproduce on every
  backend.  At the default ``0`` the fold pops at the trigger instant
  before any other event, bit-identical to the synchronous engine.
  Jobs arriving while a shard's cycle is in flight queue as pending and
  join the next cycle; the shard's trigger pops are deferred until the
  fold re-arms its deadline.
* ``trigger_epsilon`` — TRIGGERs within ε seconds of a batch head
  coalesce into one engine batch (exact same-instant ties always
  coalesce, so ε=0 keeps the legacy behavior), which is what lets
  arrival-driven and bursty fleets form multi-task batches worth
  shipping to the process pool.
* ``pipeline`` — force the async submit/fold path even at zero latency
  (also via the ``CYCLE_PIPELINE`` environment variable), so the event
  loop keeps draining heap events while workers optimize.

Pass ``cycle_executor="process"`` (or set ``CYCLE_EXECUTOR``) to overlap
concurrently-due NSGA-II cycles on a worker pool.
"""

from __future__ import annotations

import heapq
import itertools
import os
import time
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field
from enum import IntEnum

import numpy as np

from ..backends.qpu import QPU
from ..scheduler.cycle import make_latency_model, run_optimization
from ..scheduler.triggers import SchedulingTrigger
from .availability import AvailabilityModel
from .backend_sim import SimulatedQPU
from .cycle_executor import CycleExecutor, make_cycle_executor
from .execution import ExecutionModel
from .fleet import (
    FleetShard,
    RebalancePolicy,
    ShardBalancer,
    make_balancer,
    make_rebalancer,
    partition_fleet,
)
from .job import HybridApplication, JobStatus
from .metrics import SimulationMetrics, TimeSeries
from .tenancy import AdmissionController, AdmissionDecision

__all__ = [
    "CloudSimulator",
    "SimulationConfig",
    "EventType",
    "CYCLE_PIPELINE_ENV",
]

#: Environment variable: any truthy value ("1"/"true"/"yes"/"on") makes
#: simulators default to the async submit/fold path even at zero modeled
#: latency — the same engine CI exercises on every push.
CYCLE_PIPELINE_ENV = "CYCLE_PIPELINE"


class EventType(IntEnum):
    """Heap tie-break priorities at equal timestamps.

    Cycle folds come first: a fold scheduled for time t commits decisions
    made strictly earlier, so every other time-t event must see the
    post-fold fleet state — and at the default zero latency this is what
    makes the pipelined engine bit-identical to the old inline cycle,
    which also ran before any other same-instant event could be
    processed.  Completions land before samples so a sample at time t
    sees every application with ``finish_time <= t``; recalibration,
    sampling, arrivals, and trigger deadlines keep the processing order
    of the original time-stepping loop.  Availability flips land right
    after completions so routing at time t sees the fleet state *at* t.
    Rebalancing sees every same-instant arrival but runs *before*
    trigger deadlines: a rebalance tick aligned with a trigger deadline
    migrates the queued backlog first, and the triggers then schedule
    the rebalanced queues (ordered after, an aligned tick would only
    ever see freshly drained queues and steal nothing).
    """

    CYCLE_FOLD = 0
    COMPLETION = 1
    AVAILABILITY = 2
    RECALIBRATION = 3
    SAMPLE = 4
    ARRIVAL = 5
    REBALANCE = 6
    TRIGGER = 7


@dataclass
class SimulationConfig:
    """Knobs of one simulation run."""

    duration_seconds: float = 3600.0
    sample_every_seconds: float = 120.0
    recalibrate_every_seconds: float | None = None
    seed: int = 0


@dataclass
class _InFlightBatch:
    """One launched engine batch awaiting its ``CYCLE_FOLD`` event.

    ``items`` holds ``(shard, plan, schedule)`` per due shard in shard-id
    order: split-API policies carry their :class:`CyclePlan` (``schedule``
    is resolved at the fold), non-split policies already computed their
    schedule from the snapshot at submit time.  Exactly one of ``handle``
    (async submit) / ``results`` (synchronous run) is set when the batch
    carried optimization tasks.
    """

    items: list = field(default_factory=list)
    handle: object | None = None
    results: list | None = None
    submit_time: float = 0.0


class CloudSimulator:
    """Batched-trigger (Qonductor) or per-arrival (baseline) cloud sim.

    The plain constructor builds the classic single-shard configuration
    from ``fleet`` + ``policy``; pass ``shards`` (a list of
    :class:`FleetShard`) plus a ``balancer`` for partitioned fleets, or
    use :meth:`sharded` to build both from a fleet and a policy prototype.
    """

    def __init__(
        self,
        fleet: list[QPU] | None = None,
        policy=None,
        execution_model: ExecutionModel | None = None,
        *,
        trigger: SchedulingTrigger | None = None,
        config: SimulationConfig | None = None,
        shards: list[FleetShard] | None = None,
        balancer: str | ShardBalancer = "round_robin",
        rebalance: str | RebalancePolicy | None = None,
        availability: AvailabilityModel | None = None,
        cycle_executor: str | CycleExecutor | None = None,
        admission: AdmissionController | None = None,
        cycle_latency: float | Callable | None = None,
        trigger_epsilon: float = 0.0,
        pipeline: bool | None = None,
    ) -> None:
        self.config = config or SimulationConfig()
        self.execution_model = execution_model or ExecutionModel(
            seed=self.config.seed
        )
        if shards is not None:
            if fleet is not None or policy is not None or trigger is not None:
                raise ValueError(
                    "pass either (fleet, policy[, trigger]) or shards, not both"
                )
            self.shards = list(shards)
        else:
            if fleet is None or policy is None:
                raise ValueError("need a fleet and a policy (or shards)")
            self.shards = [
                FleetShard(
                    0,
                    [SimulatedQPU(q) for q in fleet],
                    policy,
                    trigger or SchedulingTrigger(),
                )
            ]
        self.balancer = make_balancer(balancer)
        # Both adaptive subsystems default to off: static fleets stay
        # bit-identical to the pre-rebalancing simulator.
        self.rebalancer = (
            make_rebalancer(rebalance) if rebalance is not None else None
        )
        self.availability = availability
        # The multi-tenant front door (see repro.cloud.tenancy).  ``None``
        # — the default — bypasses admission entirely, as do untenanted
        # jobs under a controller, so tenancy-off runs stay bit-identical.
        self.admission = admission
        # The backend for concurrently-due scheduling cycles.  ``None``
        # consults the CYCLE_EXECUTOR environment variable and falls back
        # to serial; every backend is bit-identical by contract, so the
        # choice is purely a wall-clock decision.
        self.cycle_executor = make_cycle_executor(cycle_executor)
        self._owns_executor = not isinstance(cycle_executor, CycleExecutor)
        # Pipelined-engine knobs.  ``cycle_latency`` models the
        # scheduler's own runtime in *simulated* seconds (number or
        # callable over the batch's tasks); ``trigger_epsilon`` widens
        # trigger coalescing to a window; ``pipeline`` forces the async
        # submit/fold path even at zero latency (``None`` consults the
        # CYCLE_PIPELINE environment variable).  All default to off and
        # the defaults are bit-identical to the synchronous engine.
        self.latency_model = make_latency_model(cycle_latency)
        if trigger_epsilon < 0:
            raise ValueError(
                f"trigger_epsilon must be >= 0, got {trigger_epsilon}"
            )
        self.trigger_epsilon = float(trigger_epsilon)
        if pipeline is None:
            pipeline = os.environ.get(
                CYCLE_PIPELINE_ENV, ""
            ).strip().lower() in ("1", "true", "yes", "on")
        self.pipeline = bool(pipeline)
        self._rng = np.random.default_rng(self.config.seed)

    @classmethod
    def sharded(
        cls,
        fleet: list[QPU],
        policy,
        *,
        num_shards: int,
        balancer: str | ShardBalancer = "least_loaded",
        execution_model: ExecutionModel | None = None,
        trigger_factory=None,
        config: SimulationConfig | None = None,
        rebalance: str | RebalancePolicy | None = None,
        availability: AvailabilityModel | None = None,
        cycle_executor: str | CycleExecutor | None = None,
        admission: AdmissionController | None = None,
        cycle_latency: float | Callable | None = None,
        trigger_epsilon: float = 0.0,
        pipeline: bool | None = None,
    ) -> "CloudSimulator":
        """Partition ``fleet`` into ``num_shards`` shards.

        ``policy`` is either a prototype exposing ``spawn(shard_id)``
        (every scheduling policy does) or a callable
        ``shard_id -> policy`` building one instance per shard.
        ``trigger_factory`` (``shard_id -> SchedulingTrigger``) defaults
        to a fresh paper-default trigger per shard.  ``rebalance``
        (a strategy name or :class:`RebalancePolicy`) turns on
        work-stealing between the shards; ``availability`` injects
        maintenance windows and outages.  ``cycle_latency`` /
        ``trigger_epsilon`` / ``pipeline`` configure the pipelined
        engine (see the class docstring).
        """
        policy_factory = policy.spawn if hasattr(policy, "spawn") else policy
        shards = [
            FleetShard(
                i,
                [SimulatedQPU(q) for q in group],
                policy_factory(i),
                trigger_factory(i) if trigger_factory else SchedulingTrigger(),
            )
            for i, group in enumerate(partition_fleet(fleet, num_shards))
        ]
        return cls(
            execution_model=execution_model,
            config=config,
            shards=shards,
            balancer=balancer,
            rebalance=rebalance,
            availability=availability,
            cycle_executor=cycle_executor,
            admission=admission,
            cycle_latency=cycle_latency,
            trigger_epsilon=trigger_epsilon,
            pipeline=pipeline,
        )

    # -- single-shard compatibility views ------------------------------
    @property
    def backends(self) -> list[SimulatedQPU]:
        """Every simulated backend, in shard order."""
        return [b for shard in self.shards for b in shard.backends]

    @property
    def policy(self):
        return self.shards[0].policy

    @property
    def trigger(self) -> SchedulingTrigger:
        return self.shards[0].trigger

    @property
    def is_batched(self) -> bool:
        return self.shards[0].is_batched

    # ------------------------------------------------------------------
    def _dispatch(
        self,
        shard: FleetShard,
        job,
        qpu_name: str,
        now: float,
        metrics: SimulationMetrics,
        apps_by_job: dict,
        on_finish,
    ) -> None:
        if self.admission is not None:
            self.admission.track_dequeued(job)
        backend = next(b for b in shard.backends if b.name == qpu_name)
        record = backend.execute(job, now, self.execution_model, self._rng)
        # Dispatch != completion: the job is only *completed* when its
        # COMPLETION event folds inside the horizon (see ``complete``).
        metrics.dispatched_jobs += 1
        app = apps_by_job.pop(job.job_id, None)
        if app is not None:
            app.pre_seconds = record.classical_pre_seconds
            app.post_seconds = record.classical_post_seconds
            # Classical post-processing starts right after the quantum part;
            # classical waiting is ~zero (thousands of workers available).
            app.finish_time = job.finish_time + record.classical_post_seconds
            on_finish(app)

    def _fail(self, job, metrics, apps_by_job) -> None:
        if self.admission is not None:
            self.admission.track_dequeued(job)
        job.status = JobStatus.FAILED
        metrics.unschedulable_jobs += 1
        apps_by_job.pop(job.job_id, None)

    def _record_admission(
        self, job, decision: AdmissionDecision, metrics: SimulationMetrics
    ) -> None:
        bucket = metrics.per_tenant_admission.setdefault(
            job.tenant_id, {"admitted": 0, "degraded": 0, "rejected": 0}
        )
        if decision.action == "reject":
            bucket["rejected"] += 1
            metrics.admission_rejected += 1
        elif decision.action == "degrade":
            bucket["degraded"] += 1
            metrics.admission_degraded += 1
        else:
            bucket["admitted"] += 1

    def _begin_batch(
        self, shards: list[FleetShard], now: float, metrics
    ) -> tuple[_InFlightBatch, float]:
        """Launch one engine batch: snapshot, submit, model the latency.

        ``shards`` must already be in shard-id order.  Each shard's
        pending queue is snapshotted and cleared — jobs arriving while
        the batch is in flight queue for the *next* cycle.  Policies
        exposing the split cycle API (``begin_cycle`` / ``finish_cycle``
        — the Qonductor scheduler) build their plan on the main thread,
        with estimates prefetched through the shared cache; policies
        without it (e.g. batched FCFS) compute their whole schedule from
        the snapshot now, so a later fold commits exactly the decisions
        the trigger-time state implied.  The pure optimization stage
        runs through the executor: synchronously when the batch folds at
        this same instant (zero latency, no forced pipelining — the
        single-task inline shortcut keeps arrival-path cycles free of
        pool overhead), asynchronously via ``submit`` otherwise, letting
        the event loop drain while workers optimize.

        Returns the in-flight batch record and its modeled latency in
        simulated seconds; the caller decides when (or whether, for the
        horizon flush) to push the ``CYCLE_FOLD`` event.
        """
        metrics.cycle_batches += 1
        metrics.max_batch_cycles = max(metrics.max_batch_cycles, len(shards))
        items: list = []
        for shard in shards:
            jobs = shard.pending
            shard.pending = []
            if hasattr(shard.policy, "begin_cycle"):
                plan = shard.policy.begin_cycle(
                    jobs, shard.qpus, shard.waiting_map(now)
                )
                items.append((shard, plan, None))
            else:
                schedule = shard.policy.schedule(
                    jobs, shard.qpus, shard.waiting_map(now)
                )
                items.append((shard, None, schedule))
        latency = max(
            0.0,
            float(
                self.latency_model(
                    [
                        plan.task if plan is not None else None
                        for _, plan, _ in items
                    ]
                )
            ),
        )
        tasks = [
            plan.task
            for _, plan, _ in items
            if plan is not None and plan.task is not None
        ]
        handle = results = None
        if tasks:
            t0 = time.perf_counter()
            if latency > 0.0 or self.pipeline:
                handle = self.cycle_executor.submit(run_optimization, tasks)
            else:
                results = self.cycle_executor.run(run_optimization, tasks)
            metrics.stage_seconds["optimize_wall"] = (
                metrics.stage_seconds.get("optimize_wall", 0.0)
                + time.perf_counter()
                - t0
            )
        batch = _InFlightBatch(
            items=items, handle=handle, results=results, submit_time=now
        )
        for shard in shards:
            shard.in_flight = batch
        return batch, latency

    def _fold_batch(
        self, batch: _InFlightBatch, now: float, metrics, apps_by_job,
        on_finish,
    ) -> None:
        """Fold a launched batch back in, in shard-id order.

        Blocks on the executor handle if workers are still running (the
        blocked wait — not the full stage — lands in ``optimize_wall``,
        so the metric reports what the optimization stage actually cost
        the event loop after overlap).  Dispatch RNG draws, completion
        pushes, metrics, and cache updates all happen here in shard-id
        order, identical whichever backend — or worker — ran each cycle.
        """
        results = batch.results
        if batch.handle is not None:
            t0 = time.perf_counter()
            results = self.cycle_executor.result(batch.handle)
            metrics.stage_seconds["optimize_wall"] = (
                metrics.stage_seconds.get("optimize_wall", 0.0)
                + time.perf_counter()
                - t0
            )
        result_iter = iter(results) if results is not None else None
        for shard, plan, schedule in batch.items:
            if plan is not None:
                result = next(result_iter) if plan.task is not None else None
                schedule = shard.policy.finish_cycle(plan, result)
            self._apply_schedule(
                shard, schedule, now, metrics, apps_by_job, on_finish
            )
        lag = now - batch.submit_time
        if lag > 0.0:
            metrics.pipelined_batches += 1
            metrics.fold_lag_seconds += lag
        for shard, _, _ in batch.items:
            shard.in_flight = None

    def _run_cycles(
        self,
        shards: list[FleetShard],
        now: float,
        metrics,
        apps_by_job,
        on_finish,
    ) -> None:
        """One engine batch, begun and folded at the same instant —
        the horizon-flush path (and the zero-latency semantics every
        pipelined run must reproduce at its fold instants)."""
        if not shards:
            return
        batch, _ = self._begin_batch(shards, now, metrics)
        self._fold_batch(batch, now, metrics, apps_by_job, on_finish)

    def _apply_schedule(
        self, shard: FleetShard, schedule, now: float, metrics, apps_by_job,
        on_finish,
    ) -> None:
        """Fold one cycle's schedule back in: dispatch, fail, retain."""
        metrics.scheduling_cycles += 1
        stage = getattr(schedule, "stage_seconds", None)
        if stage:
            agg = metrics.stage_seconds
            for key, value in stage.items():
                agg[key] = agg.get(key, 0.0) + value
        # Pre-warm ground-truth components with one array pass per target
        # device over the whole dispatched set; the per-job execute() calls
        # below then hit the memo (and keep their RNG draw order).
        by_backend: dict[str, list] = {}
        for dec in schedule.decisions:
            by_backend.setdefault(dec.qpu_name, []).append(dec.job.metrics)
        for b in shard.backends:
            group = by_backend.get(b.name)
            if group:
                self.execution_model.components_batch(
                    group, b.qpu.calibration, b.qpu.model
                )
        for dec in schedule.decisions:
            dec.job.schedule_time = now
            self._dispatch(
                shard, dec.job, dec.qpu_name, now, metrics, apps_by_job,
                on_finish,
            )
        # Fail only jobs no device in the shard could *ever* serve.  A
        # job that fits a currently-offline QPU is a transient casualty
        # of an outage: it stays pending until the device recovers (or a
        # rebalance cycle migrates it to a shard that fits it now).
        retained: list = []
        for job in schedule.unschedulable:
            if any(b.num_qubits >= job.num_qubits for b in shard.backends):
                retained.append(job)
            else:
                self._fail(job, metrics, apps_by_job)
        # Prepend: retained jobs arrived before anything queued while the
        # batch was in flight, so they keep their arrival-order position.
        # (Empty pending at zero latency — plain reassignment back then.)
        shard.pending[:0] = retained

    def _schedule_immediate(
        self, shard: FleetShard, jobs: list, now: float, metrics, apps_by_job,
        on_finish,
    ) -> None:
        assignments = shard.policy.assign(
            jobs, shard.qpus, shard.waiting_map(now)
        )
        # One assign() call is one scheduling cycle, however many jobs it
        # covers — matching the batched path, so baseline-vs-Qonductor
        # cycle counts (Fig. 8/9) compare like for like.
        metrics.scheduling_cycles += 1
        for job, qpu_name in assignments:
            if qpu_name is None:
                self._fail(job, metrics, apps_by_job)
                continue
            job.schedule_time = now
            self._dispatch(
                shard, job, qpu_name, now, metrics, apps_by_job, on_finish
            )

    def _recalibrate(self, now: float) -> None:
        """Fleet-wide calibration cycle across every shard.

        Every shard policy's hook runs with the full fleet, so per-shard
        side effects (e.g. a Qonductor ``on_recalibrate`` callback) are
        never skipped; a cached estimator shared across shards stays
        single-invalidation because its own hook is idempotent per
        calibration wave (see ``CachedEstimator.on_recalibration``).
        """
        all_qpus = [b.qpu for b in self.backends]
        for qpu in all_qpus:
            qpu.recalibrate(timestamp=now)
        self.execution_model.on_recalibration()
        for shard in self.shards:
            hook = getattr(shard.policy, "on_recalibration", None)
            if hook is not None:
                hook(all_qpus)

    def _collect_cache_stats(self, metrics: SimulationMetrics) -> None:
        """Merge estimate-cache counters across the shards' policies."""
        stats_by_id: dict[int, object] = {}
        for shard in self.shards:
            fn = getattr(shard.policy, "estimate_fn", None)
            stats = getattr(fn, "stats", None)
            if stats is not None:
                stats_by_id[id(stats)] = stats
        if not stats_by_id:
            return
        unique = list(stats_by_id.values())
        if len(unique) == 1:
            metrics.estimate_cache = unique[0].as_dict()
            return
        hits = sum(s.hits for s in unique)
        misses = sum(s.misses for s in unique)
        lookups = hits + misses
        metrics.estimate_cache = {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
            "invalidations": sum(s.invalidations for s in unique),
        }

    # ------------------------------------------------------------------
    def run(
        self, apps: list[HybridApplication] | Iterable[HybridApplication]
    ) -> SimulationMetrics:
        """Simulate the full application stream; returns collected metrics.

        ``apps`` may be a list (sorted internally, kept by the caller) or
        any time-ordered iterator of applications — e.g.
        ``LoadGenerator.iter_arrivals`` — which is consumed lazily, one
        arrival ahead of simulated time.
        """
        try:
            return self._run(apps)
        finally:
            if self._owns_executor:
                # The executor was resolved from a name/env spec, so this
                # run is its only user: release the workers even when the
                # event loop raises (a later run() lazily rebuilds them).
                # Caller-supplied instances stay open for reuse — their
                # owner calls close() / uses the simulator as a context
                # manager when done.
                self.cycle_executor.close()

    def close(self) -> None:
        """Release the cycle executor's worker pool (idempotent).

        ``run()`` already closes executors the simulator resolved itself
        from a name or the ``CYCLE_EXECUTOR`` environment variable.
        Call this — or use the simulator as a context manager — when you
        passed an executor *instance* to share across runs and are done
        with it; otherwise a process pool leaks its workers until
        interpreter exit.  A closed pool rebuilds lazily, so a later
        ``run()`` still works.
        """
        self.cycle_executor.close()

    def __enter__(self) -> "CloudSimulator":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _run(
        self, apps: list[HybridApplication] | Iterable[HybridApplication]
    ) -> SimulationMetrics:
        cfg = self.config
        wall_start = time.perf_counter()
        metrics = SimulationMetrics()
        metrics.num_shards = len(self.shards)
        if isinstance(apps, list):
            stream: Iterator[HybridApplication] = iter(
                sorted(apps, key=lambda a: a.arrival_time)
            )
        else:
            stream = iter(apps)
        # Only in-flight applications (arrived, not yet dispatched) are
        # held here; entries are dropped on dispatch/rejection so memory
        # stays independent of the stream length.
        apps_by_job: dict[int, HybridApplication] = {}
        horizon = cfg.duration_seconds

        # Running completion aggregates (fed by COMPLETION events): plain
        # sums/counts, so each sample is O(backends) time and the
        # aggregate state is O(1) memory however many jobs complete.
        done_fid_sum = 0.0
        done_fid_count = 0
        done_jct_sum = 0.0
        done_jct_count = 0

        seq = itertools.count()
        heap: list[tuple[float, int, int, object]] = []

        def push(t: float, kind: EventType, payload=None) -> None:
            heapq.heappush(heap, (t, int(kind), next(seq), payload))

        def sample(t: float) -> None:
            if done_jct_count:
                if done_fid_count:
                    metrics.mean_fidelity.add(
                        t, done_fid_sum / done_fid_count
                    )
                metrics.mean_completion_time.add(
                    t, done_jct_sum / done_jct_count
                )
            busy = [
                max(0.0, b.busy_seconds - max(0.0, b.free_at - t))
                for shard in self.shards
                for b in shard.backends
            ]
            metrics.mean_utilization.add(
                t, float(np.mean([min(1.0, bu / max(t, 1e-9)) for bu in busy]))
            )
            metrics.scheduler_queue_size.add(
                t, sum(len(shard.pending) for shard in self.shards)
            )
            if len(self.shards) > 1:
                for shard in self.shards:
                    metrics.shard_queue_size.setdefault(
                        shard.shard_id, TimeSeries()
                    ).add(t, len(shard.pending))

        def complete(app: HybridApplication) -> None:
            nonlocal done_fid_sum, done_fid_count, done_jct_sum, done_jct_count
            if app.quantum_job.fidelity is not None:
                done_fid_sum += app.quantum_job.fidelity
                done_fid_count += 1
            done_jct_sum += app.completion_time
            done_jct_count += 1
            metrics.completed_jobs += 1
            # Per-tenant JCT / SLO accounting (tenant-tagged jobs only,
            # so untenanted runs never touch these dicts).
            job = app.quantum_job
            if job.tenant is not None:
                tid = job.tenant.tenant_id
                metrics.tenant_jct.setdefault(tid, []).append(
                    app.completion_time
                )
                metrics.tenant_tier.setdefault(tid, job.tenant.tier)
                slo = job.tenant.slo_jct_seconds
                if slo is not None and app.completion_time > slo:
                    metrics.slo_violations[tid] = (
                        metrics.slo_violations.get(tid, 0) + 1
                    )

        def on_finish(app: HybridApplication) -> None:
            push(app.finish_time, EventType.COMPLETION, app)

        def launch(firing: list[FleetShard], now: float) -> None:
            """Begin one engine batch over ``firing`` (shard-id order)
            and schedule its fold.  At zero modeled latency the fold
            event pops at this same instant before any other event —
            the inline-cycle semantics; with latency it pops later and
            the loop keeps draining.  The trigger is marked fired at the
            fold, which also re-arms the interval deadline."""
            if not firing:
                return
            batch, latency = self._begin_batch(firing, now, metrics)
            push(now + latency, EventType.CYCLE_FOLD, batch)

        def fire_if_ready(shard: FleetShard, now: float) -> None:
            """Launch a cycle when the shard's trigger condition is met
            (shared by the arrival and rebalance paths; the TRIGGER
            deadline handler has its own flow — it always marks the
            trigger fired, even on an empty queue).  A shard with a
            cycle in flight never fires: its new arrivals queue for the
            next cycle, which the fold's re-armed deadline (or the next
            arrival after the fold) picks up."""
            if shard.in_flight is not None:
                return
            if not shard.trigger.should_fire(len(shard.pending), now):
                return
            if self.trigger_epsilon > 0.0:
                # ε-window hold: fire ε later so other shards becoming
                # eligible inside the window merge into one batch (the
                # hold flag dedupes — one pending hold per shard).
                if shard.trigger.arm_hold():
                    push(
                        now + self.trigger_epsilon,
                        EventType.TRIGGER,
                        (shard.shard_id, "hold"),
                    )
                return
            launch([shard], now)

        first = next(stream, None)
        if first is not None:
            push(first.arrival_time, EventType.ARRIVAL, first)
        if cfg.sample_every_seconds < horizon:
            push(cfg.sample_every_seconds, EventType.SAMPLE, None)
        if cfg.recalibrate_every_seconds:
            push(cfg.recalibrate_every_seconds, EventType.RECALIBRATION, None)
        for shard in self.shards:
            if shard.is_batched:
                push(
                    shard.trigger.next_deadline(0.0),
                    EventType.TRIGGER,
                    shard.shard_id,
                )
        qpu_by_name: dict[str, QPU] = {
            b.name: b.qpu for shard in self.shards for b in shard.backends
        }
        offline_since: dict[str, float] = {}
        if self.availability is not None:
            for ev in self.availability.schedule(list(qpu_by_name), horizon):
                if ev.time < horizon:
                    push(ev.time, EventType.AVAILABILITY, ev)
        if (
            self.rebalancer is not None
            and len(self.shards) > 1
            and self.rebalancer.interval_seconds < horizon
        ):
            push(self.rebalancer.interval_seconds, EventType.REBALANCE)

        # Dedupe proactive outage-rebalance pushes: several QPUs flipping
        # offline at one instant warrant one immediate check, not one per
        # flip.
        outage_rebalance_at: float | None = None

        while heap and heap[0][0] < horizon:
            now, kind, _, payload = heapq.heappop(heap)
            metrics.events_processed += 1

            if kind == EventType.CYCLE_FOLD:
                # A launched batch's decisions commit now; the trigger
                # fires *at the fold* — the shard spent the in-flight
                # window unable to start another cycle, so its interval
                # cadence restarts here.
                self._fold_batch(
                    payload, now, metrics, apps_by_job, on_finish
                )
                for shard, _, _ in payload.items:
                    shard.trigger.fired(now)
                    push(
                        shard.trigger.next_deadline(now),
                        EventType.TRIGGER,
                        shard.shard_id,
                    )

            elif kind == EventType.COMPLETION:
                complete(payload)

            elif kind == EventType.AVAILABILITY:
                qpu = qpu_by_name[payload.qpu_name]
                if payload.online and not qpu.online:
                    metrics.recovery_events += 1
                    went_down = offline_since.pop(payload.qpu_name, now)
                    metrics.qpu_downtime_seconds[payload.qpu_name] = (
                        metrics.qpu_downtime_seconds.get(payload.qpu_name, 0.0)
                        + (now - went_down)
                    )
                elif not payload.online and qpu.online:
                    metrics.outage_events += 1
                    offline_since[payload.qpu_name] = now
                    # Proactive stealing (opt-in): an outage strands the
                    # affected shard's backlog, so schedule an immediate
                    # rebalance check at this instant instead of waiting
                    # for the periodic tick.  REBALANCE sorts after the
                    # remaining same-instant AVAILABILITY flips (the
                    # check sees the full post-outage state) and before
                    # same-instant TRIGGERs, exactly like a periodic
                    # tick would — deterministic ordering preserved.
                    if (
                        self.rebalancer is not None
                        and self.rebalancer.react_to_outages
                        and len(self.shards) > 1
                        and outage_rebalance_at != now
                    ):
                        outage_rebalance_at = now
                        push(now, EventType.REBALANCE, "outage")
                qpu.online = payload.online

            elif kind == EventType.REBALANCE:
                moves = self.rebalancer.rebalance(self.shards, now)
                metrics.rebalance_cycles += 1
                metrics.jobs_migrated += len(moves)
                # A shard that just received work may be past its trigger
                # condition; fire it now instead of waiting for the next
                # deadline (mirrors the arrival path).
                receivers = sorted(
                    {m.dst for m in moves}, key=lambda s: s.shard_id
                )
                for shard in receivers:
                    if shard.is_batched:
                        fire_if_ready(shard, now)
                # Only the periodic chain re-arms itself; a proactive
                # outage check (payload "outage") is a one-shot.
                if payload is None:
                    push(
                        now + self.rebalancer.interval_seconds,
                        EventType.REBALANCE,
                    )

            elif kind == EventType.RECALIBRATION:
                self._recalibrate(now)
                push(now + cfg.recalibrate_every_seconds, EventType.RECALIBRATION)

            elif kind == EventType.SAMPLE:
                sample(now)
                push(now + cfg.sample_every_seconds, EventType.SAMPLE)

            elif kind == EventType.ARRIVAL:
                app = payload
                nxt = next(stream, None)
                if nxt is not None:
                    push(nxt.arrival_time, EventType.ARRIVAL, nxt)
                job = app.quantum_job
                # The multi-tenant front door: tenant-tagged arrivals are
                # checked against their contract *before* routing.  A
                # rejection sheds the job at the API edge (it is never
                # queued, dispatched, or counted in-flight); a degrade
                # admits it as best-effort.
                if self.admission is not None and job.tenant is not None:
                    decision = self.admission.admit(job, now)
                    self._record_admission(job, decision, metrics)
                    if not decision.admitted:
                        job.status = JobStatus.REJECTED
                        continue
                    if decision.action == "degrade":
                        job.best_effort = True
                job.status = JobStatus.QUEUED
                apps_by_job[job.job_id] = app
                metrics.peak_inflight_apps = max(
                    metrics.peak_inflight_apps, len(apps_by_job)
                )
                shard = self.balancer.route(job, self.shards, now)
                shard.jobs_routed += 1
                if shard.is_batched:
                    shard.pending.append(job)
                    if self.admission is not None:
                        self.admission.track_queued(job)
                    fire_if_ready(shard, now)
                else:
                    self._schedule_immediate(
                        shard, [job], now, metrics, apps_by_job, on_finish
                    )

            elif kind == EventType.TRIGGER:
                # Coalesce TRIGGERs into one engine batch: every entry
                # landing at this same simulated instant always merges
                # (the ε=0 contract), and with ``trigger_epsilon > 0``
                # entries up to ε later join too, firing early alongside
                # the batch head.  TRIGGER is the highest-priority-value
                # event kind, so every other same-time event has already
                # been folded in; the batch executes in shard-id order
                # (one canonical order for every executor backend),
                # which is what keeps parallel runs bit-identical to
                # serial ones.  Payloads are either a shard id (an
                # interval deadline) or ``(shard_id, "hold")`` (an
                # ε-window hold armed on the arrival path).
                #
                # due_info: shard_id -> [shard, fire_time, via_deadline].
                # ``fire_time`` is the entry's own instant (deadline
                # freshness and should_fire are judged there — a merged
                # deadline *would* have fired at its own time, even if
                # its interval has not elapsed by ``now``);
                # ``via_deadline`` marks shards whose interval cadence
                # this batch owns (a non-firing deadline re-arms, a
                # non-firing hold is simply dropped).
                due_info: dict[int, list] = {}

                def consider(payload, t_event: float, from_window: bool) -> bool:
                    """Fold one TRIGGER entry in.  True = consumed;
                    False = leave it in the heap for its own instant
                    (window-pulled entries only)."""
                    if isinstance(payload, tuple):
                        shard_id, is_hold = payload[0], True
                    else:
                        shard_id, is_hold = payload, False
                    shard = self.shards[shard_id]
                    if is_hold:
                        if not shard.trigger.disarm_hold():
                            return True  # stale: superseded meanwhile
                        if shard.in_flight is not None:
                            return True  # deferred; arrivals re-arm later
                        if shard_id not in due_info:
                            due_info[shard_id] = [shard, t_event, False]
                        return True
                    if t_event < shard.trigger.next_deadline(t_event):
                        return True  # stale deadline: fired meanwhile
                    if shard.in_flight is not None:
                        # Deferred: the fold re-arms the deadline.  A
                        # window-pulled entry stays queued and goes
                        # stale at its own instant.
                        return not from_window
                    info = due_info.get(shard_id)
                    if info is not None:
                        info[2] = True  # the deadline owns the cadence
                        return True
                    if from_window and not shard.trigger.should_fire(
                        len(shard.pending), t_event
                    ):
                        # Would not fire: merging it would only reset an
                        # idle shard's cadence early.  Leave it queued.
                        return False
                    due_info[shard_id] = [shard, t_event, True]
                    return True

                consider(payload, now, False)
                # Exact same-instant ties always coalesce (ε=0 contract).
                while (
                    heap
                    and heap[0][0] == now
                    and heap[0][1] == int(EventType.TRIGGER)
                ):
                    _, _, _, late = heapq.heappop(heap)
                    metrics.events_processed += 1
                    consider(late, now, False)
                if self.trigger_epsilon > 0.0 and due_info:
                    # ε-window: pull queued TRIGGERs within ε of the
                    # batch head forward into this batch.  Entries that
                    # decline (stale at their own instant / in flight /
                    # would not fire) are left in place.  Processing in
                    # (time, push-seq) order — heap pop order — keeps
                    # the merge deterministic.
                    window = now + self.trigger_epsilon
                    kept, pulled = [], []
                    for entry in heap:
                        if (
                            entry[1] == int(EventType.TRIGGER)
                            and entry[0] <= window
                        ):
                            pulled.append(entry)
                        else:
                            kept.append(entry)
                    if pulled:
                        pulled.sort()
                        for entry in pulled:
                            if consider(entry[3], entry[0], True):
                                metrics.events_processed += 1
                                if entry[0] > now:
                                    metrics.epsilon_merged_triggers += 1
                            else:
                                kept.append(entry)
                        heap[:] = kept
                        heapq.heapify(heap)
                due = sorted(
                    due_info.values(), key=lambda info: info[0].shard_id
                )
                firing = [
                    shard
                    for shard, fire_time, _ in due
                    if shard.trigger.should_fire(
                        len(shard.pending), fire_time
                    )
                ]
                launch(firing, now)
                firing_ids = {s.shard_id for s in firing}
                for shard, _, via_deadline in due:
                    if shard.shard_id in firing_ids:
                        continue  # fired+re-arm happen at the fold
                    if via_deadline:
                        shard.trigger.fired(now)
                        push(
                            shard.trigger.next_deadline(now),
                            EventType.TRIGGER,
                            shard.shard_id,
                        )

        # Final flush and bookkeeping.  First fold any batches still in
        # flight: their decisions were fixed at launch, the horizon just
        # truncates the modeled latency, so they commit at the horizon in
        # launch order — job conservation holds with cycles in flight.
        in_flight_folds = sorted(
            (e for e in heap if e[1] == int(EventType.CYCLE_FOLD)),
            key=lambda e: (e[0], e[2]),
        )
        if in_flight_folds:
            heap[:] = [
                e for e in heap if e[1] != int(EventType.CYCLE_FOLD)
            ]
            heapq.heapify(heap)
            for _, _, _, batch in in_flight_folds:
                metrics.events_processed += 1
                self._fold_batch(
                    batch, horizon, metrics, apps_by_job, on_finish
                )
        # Then schedule leftovers at the horizon (one engine batch over
        # every backlogged shard, like an aligned deadline), fold in
        # completions that land inside it, and take the last sample.
        self._run_cycles(
            [s for s in self.shards if s.is_batched and s.pending],
            horizon, metrics, apps_by_job, on_finish,
        )
        while heap:
            t, kind, _, payload = heapq.heappop(heap)
            if kind == EventType.COMPLETION and t <= horizon:
                metrics.events_processed += 1
                complete(payload)
        sample(horizon)
        # Devices still down at the horizon accrue downtime to the end.
        for name, went_down in offline_since.items():
            metrics.qpu_downtime_seconds[name] = (
                metrics.qpu_downtime_seconds.get(name, 0.0)
                + (horizon - went_down)
            )
        # Jobs still pending (held through an outage outliving the run)
        # are reported rather than silently dropped from the counters.
        metrics.pending_at_horizon = sum(
            len(shard.pending) for shard in self.shards
        )
        for shard in self.shards:
            metrics.per_shard_jobs[shard.shard_id] = shard.jobs_routed
            if self.rebalancer is not None:
                metrics.per_shard_steals[shard.shard_id] = {
                    "in": shard.jobs_stolen_in,
                    "out": shard.jobs_stolen_out,
                }
            for b in shard.backends:
                metrics.per_qpu_busy_seconds[b.name] = b.busy_seconds
                metrics.per_qpu_jobs[b.name] = b.jobs_executed
        self._collect_cache_stats(metrics)
        metrics.wall_seconds = time.perf_counter() - wall_start
        return metrics
