"""The quantum-cloud simulator (§8.2) — event-driven core.

Drives simulated time over a stream of hybrid applications with a heap
event queue: arrivals, application completions, scheduling-trigger
deadlines, metric samples, and recalibration cycles are discrete events,
so wall-clock cost scales with the number of events rather than with
simulated seconds. Classical pre-processing starts immediately on
(abundant) classical workers, quantum jobs enter the scheduler's pending
queue, scheduling fires on the paper's queue/time triggers (Qonductor) or
per-arrival (baselines), and assigned jobs execute on
:class:`SimulatedQPU` backends with ground-truth outcomes.

Completion events feed running aggregates, so metric samples are O(1) in
the number of finished applications instead of rescanning the stream —
the old batch time-stepping loop rescanned every arrived application at
every sample, which capped simulated load far below cloud scale.

Metrics sampled over time: mean fidelity, mean end-to-end completion time,
mean QPU utilization, and the scheduler's pending-queue size (Figs. 6, 8,
9).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from ..backends.qpu import QPU
from ..scheduler.triggers import SchedulingTrigger
from .backend_sim import SimulatedQPU
from .execution import ExecutionModel
from .job import HybridApplication, JobStatus
from .metrics import SimulationMetrics

__all__ = ["CloudSimulator", "SimulationConfig", "EventType"]


class EventType(IntEnum):
    """Heap tie-break priorities at equal timestamps.

    Completions land before samples so a sample at time t sees every
    application with ``finish_time <= t``; recalibration, sampling,
    arrivals, and trigger deadlines keep the processing order of the
    original time-stepping loop.
    """

    COMPLETION = 0
    RECALIBRATION = 1
    SAMPLE = 2
    ARRIVAL = 3
    TRIGGER = 4


@dataclass
class SimulationConfig:
    """Knobs of one simulation run."""

    duration_seconds: float = 3600.0
    sample_every_seconds: float = 120.0
    recalibrate_every_seconds: float | None = None
    seed: int = 0


class CloudSimulator:
    """Batched-trigger (Qonductor) or per-arrival (baseline) cloud sim."""

    def __init__(
        self,
        fleet: list[QPU],
        policy,
        execution_model: ExecutionModel | None = None,
        *,
        trigger: SchedulingTrigger | None = None,
        config: SimulationConfig | None = None,
    ) -> None:
        self.backends = [SimulatedQPU(q) for q in fleet]
        self.policy = policy
        self.config = config or SimulationConfig()
        self.execution_model = execution_model or ExecutionModel(
            seed=self.config.seed
        )
        self.trigger = trigger or SchedulingTrigger()
        # Batched policies expose .schedule() (the Qonductor scheduler);
        # per-arrival baselines expose .assign().
        self.is_batched = hasattr(policy, "schedule")
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------
    def _waiting_map(self, now: float) -> dict[str, float]:
        return {b.name: b.waiting_seconds(now) for b in self.backends}

    def _dispatch(
        self, job, qpu_name: str, now: float, apps_by_job: dict, on_finish=None
    ) -> None:
        backend = next(b for b in self.backends if b.name == qpu_name)
        record = backend.execute(job, now, self.execution_model, self._rng)
        app = apps_by_job.get(job.job_id)
        if app is not None:
            app.pre_seconds = record.classical_pre_seconds
            app.post_seconds = record.classical_post_seconds
            # Classical post-processing starts right after the quantum part;
            # classical waiting is ~zero (thousands of workers available).
            app.finish_time = job.finish_time + record.classical_post_seconds
            if on_finish is not None:
                on_finish(app)

    def _schedule_batch(
        self, pending: list, now: float, metrics, apps_by_job, on_finish=None
    ) -> list:
        """Run one Qonductor cycle; returns jobs still unschedulable."""
        qpus = [b.qpu for b in self.backends]
        schedule = self.policy.schedule(pending, qpus, self._waiting_map(now))
        metrics.scheduling_cycles += 1
        # Pre-warm ground-truth components with one array pass per target
        # device over the whole dispatched set; the per-job execute() calls
        # below then hit the memo (and keep their RNG draw order).
        by_backend: dict[str, list] = {}
        for dec in schedule.decisions:
            by_backend.setdefault(dec.qpu_name, []).append(dec.job.metrics)
        for b in self.backends:
            group = by_backend.get(b.name)
            if group:
                self.execution_model.components_batch(
                    group, b.qpu.calibration, b.qpu.model
                )
        for dec in schedule.decisions:
            dec.job.schedule_time = now
            self._dispatch(dec.job, dec.qpu_name, now, apps_by_job, on_finish)
        metrics.unschedulable_jobs += len(schedule.unschedulable)
        for job in schedule.unschedulable:
            job.status = JobStatus.FAILED
        return []

    def _schedule_immediate(
        self, jobs: list, now: float, metrics, apps_by_job, on_finish=None
    ) -> None:
        qpus = [b.qpu for b in self.backends]
        for job, qpu_name in self.policy.assign(jobs, qpus, self._waiting_map(now)):
            metrics.scheduling_cycles += 1
            if qpu_name is None:
                job.status = JobStatus.FAILED
                metrics.unschedulable_jobs += 1
                continue
            job.schedule_time = now
            self._dispatch(job, qpu_name, now, apps_by_job, on_finish)

    # ------------------------------------------------------------------
    def run(self, apps: list[HybridApplication]) -> SimulationMetrics:
        """Simulate the full application stream; returns collected metrics."""
        cfg = self.config
        wall_start = time.perf_counter()
        metrics = SimulationMetrics()
        apps = sorted(apps, key=lambda a: a.arrival_time)
        apps_by_job = {a.quantum_job.job_id: a for a in apps}
        pending: list = []
        horizon = cfg.duration_seconds

        # Running completion aggregates (fed by COMPLETION events) make
        # each sample O(backends) instead of O(arrived apps).
        done_fidelities: list[float] = []
        done_jcts: list[float] = []

        seq = itertools.count()
        heap: list[tuple[float, int, int, object]] = []

        def push(t: float, kind: EventType, payload=None) -> None:
            heapq.heappush(heap, (t, int(kind), next(seq), payload))

        def sample(t: float) -> None:
            if done_jcts:
                metrics.mean_fidelity.add(t, float(np.mean(done_fidelities)))
                metrics.mean_completion_time.add(t, float(np.mean(done_jcts)))
            busy = [
                max(0.0, b.busy_seconds - max(0.0, b.free_at - t))
                for b in self.backends
            ]
            metrics.mean_utilization.add(
                t, float(np.mean([min(1.0, bu / max(t, 1e-9)) for bu in busy]))
            )
            metrics.scheduler_queue_size.add(t, len(pending))

        def complete(app: HybridApplication) -> None:
            if app.quantum_job.fidelity is not None:
                done_fidelities.append(app.quantum_job.fidelity)
            done_jcts.append(app.completion_time)

        def on_finish(app: HybridApplication) -> None:
            push(app.finish_time, EventType.COMPLETION, app)

        if apps:
            push(apps[0].arrival_time, EventType.ARRIVAL, 0)
        if cfg.sample_every_seconds < horizon:
            push(cfg.sample_every_seconds, EventType.SAMPLE, None)
        if cfg.recalibrate_every_seconds:
            push(cfg.recalibrate_every_seconds, EventType.RECALIBRATION, None)
        if self.is_batched:
            push(self.trigger.next_deadline(0.0), EventType.TRIGGER, None)

        while heap and heap[0][0] < horizon:
            now, kind, _, payload = heapq.heappop(heap)
            metrics.events_processed += 1

            if kind == EventType.COMPLETION:
                complete(payload)

            elif kind == EventType.RECALIBRATION:
                for b in self.backends:
                    b.qpu.recalibrate(timestamp=now)
                self.execution_model.on_recalibration()
                if hasattr(self.policy, "on_recalibration"):
                    self.policy.on_recalibration([b.qpu for b in self.backends])
                push(now + cfg.recalibrate_every_seconds, EventType.RECALIBRATION)

            elif kind == EventType.SAMPLE:
                sample(now)
                push(now + cfg.sample_every_seconds, EventType.SAMPLE)

            elif kind == EventType.ARRIVAL:
                app = apps[payload]
                if payload + 1 < len(apps):
                    push(apps[payload + 1].arrival_time, EventType.ARRIVAL,
                         payload + 1)
                job = app.quantum_job
                job.status = JobStatus.QUEUED
                if self.is_batched:
                    pending.append(job)
                    if self.trigger.should_fire(len(pending), now):
                        pending = self._schedule_batch(
                            pending, now, metrics, apps_by_job, on_finish
                        )
                        self.trigger.fired(now)
                        push(self.trigger.next_deadline(now), EventType.TRIGGER)
                else:
                    self._schedule_immediate(
                        [job], now, metrics, apps_by_job, on_finish
                    )

            elif kind == EventType.TRIGGER:
                if now < self.trigger.next_deadline(now):
                    continue  # stale deadline: the trigger fired meanwhile
                if self.trigger.should_fire(len(pending), now):
                    pending = self._schedule_batch(
                        pending, now, metrics, apps_by_job, on_finish
                    )
                self.trigger.fired(now)
                push(self.trigger.next_deadline(now), EventType.TRIGGER)

        # Final flush and bookkeeping: schedule leftovers at the horizon,
        # fold in completions that land inside it, and take the last sample.
        if self.is_batched and pending:
            pending = self._schedule_batch(
                pending, horizon, metrics, apps_by_job, on_finish
            )
        while heap:
            t, kind, _, payload = heapq.heappop(heap)
            if kind == EventType.COMPLETION and t <= horizon:
                metrics.events_processed += 1
                complete(payload)
        sample(horizon)
        metrics.completed_jobs = sum(
            1 for a in apps if a.quantum_job.status == JobStatus.COMPLETED
        )
        for b in self.backends:
            metrics.per_qpu_busy_seconds[b.name] = b.busy_seconds
            metrics.per_qpu_jobs[b.name] = b.jobs_executed
        estimate_fn = getattr(self.policy, "estimate_fn", None)
        stats = getattr(estimate_fn, "stats", None)
        if stats is not None:
            metrics.estimate_cache = stats.as_dict()
        metrics.wall_seconds = time.perf_counter() - wall_start
        return metrics
