"""The quantum-cloud simulator (§8.2) — sharded, event-driven core.

Drives simulated time over a stream of hybrid applications with a heap
event queue: arrivals, application completions, scheduling-trigger
deadlines, metric samples, and recalibration cycles are discrete events,
so wall-clock cost scales with the number of events rather than with
simulated seconds.

The fleet is organized as one or more :class:`~repro.cloud.fleet.FleetShard`
partitions, each owning a subset of QPUs plus its own scheduler/policy
instance, pending queue, and trigger; a
:class:`~repro.cloud.fleet.ShardBalancer` routes every arriving quantum
job to one shard.  All shards share the single event heap: trigger
deadlines carry their shard index, completions feed fleet-wide running
aggregates, and metric samples merge shard states (with per-shard queue
breakdowns).  A 1-shard simulator is the unsharded configuration and
reproduces it exactly.

Arrivals are *pulled*: :meth:`CloudSimulator.run` accepts either a
pre-built application list or a lazy, time-ordered iterator (see
:meth:`LoadGenerator.iter_arrivals`); only the next pending arrival plus
the in-flight applications are held in memory, so peak memory is
independent of how many jobs the run streams through.

Completion events fold into running sums/counts (not per-completion
lists), so each metric sample costs O(backends) time and the aggregate
state is O(1) memory no matter how many applications finish.  Metrics
sampled over time: mean fidelity, mean end-to-end completion time, mean
QPU utilization, and the pending-queue sizes (Figs. 6, 8, 9).

Two optional subsystems make the fleet *adaptive*:

* **Dynamic availability** — an
  :class:`~repro.cloud.availability.AvailabilityModel` pre-computes
  maintenance windows and random outage/recovery flips; ``AVAILABILITY``
  events toggle ``QPU.online`` mid-run and every routing/scheduling
  layer is online-aware.  In-flight work keeps its committed finish time.
* **Work stealing** — a
  :class:`~repro.cloud.fleet.RebalancePolicy` runs on periodic
  ``REBALANCE`` events, migrating pending jobs from overloaded shards to
  feasible underloaded ones.  Both are off by default, leaving static
  runs bit-identical.

**The parallel scheduling engine:** TRIGGER deadlines that fire at the
same simulated instant are coalesced into one batch; each due shard's
pre-processing runs on the main thread (prefetching estimates through
the shared cache), the pure optimization stage of the whole batch is
dispatched to a :class:`~repro.cloud.cycle_executor.CycleExecutor`
(serial / thread / process — serial is the default), and results fold
back in shard-id order so metrics, RNG draws, heap pushes, and
estimate-cache updates are identical on every backend.  Pass
``cycle_executor="process"`` (or set ``CYCLE_EXECUTOR``) to overlap
concurrently-due NSGA-II cycles on a worker pool.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from enum import IntEnum

import numpy as np

from ..backends.qpu import QPU
from ..scheduler.cycle import run_optimization
from ..scheduler.triggers import SchedulingTrigger
from .availability import AvailabilityModel
from .backend_sim import SimulatedQPU
from .cycle_executor import CycleExecutor, make_cycle_executor
from .execution import ExecutionModel
from .fleet import (
    FleetShard,
    RebalancePolicy,
    ShardBalancer,
    make_balancer,
    make_rebalancer,
    partition_fleet,
)
from .job import HybridApplication, JobStatus
from .metrics import SimulationMetrics, TimeSeries
from .tenancy import AdmissionController, AdmissionDecision

__all__ = ["CloudSimulator", "SimulationConfig", "EventType"]


class EventType(IntEnum):
    """Heap tie-break priorities at equal timestamps.

    Completions land before samples so a sample at time t sees every
    application with ``finish_time <= t``; recalibration, sampling,
    arrivals, and trigger deadlines keep the processing order of the
    original time-stepping loop.  Availability flips land right after
    completions so routing at time t sees the fleet state *at* t.
    Rebalancing sees every same-instant arrival but runs *before*
    trigger deadlines: a rebalance tick aligned with a trigger deadline
    migrates the queued backlog first, and the triggers then schedule
    the rebalanced queues (ordered after, an aligned tick would only
    ever see freshly drained queues and steal nothing).
    """

    COMPLETION = 0
    AVAILABILITY = 1
    RECALIBRATION = 2
    SAMPLE = 3
    ARRIVAL = 4
    REBALANCE = 5
    TRIGGER = 6


@dataclass
class SimulationConfig:
    """Knobs of one simulation run."""

    duration_seconds: float = 3600.0
    sample_every_seconds: float = 120.0
    recalibrate_every_seconds: float | None = None
    seed: int = 0


class CloudSimulator:
    """Batched-trigger (Qonductor) or per-arrival (baseline) cloud sim.

    The plain constructor builds the classic single-shard configuration
    from ``fleet`` + ``policy``; pass ``shards`` (a list of
    :class:`FleetShard`) plus a ``balancer`` for partitioned fleets, or
    use :meth:`sharded` to build both from a fleet and a policy prototype.
    """

    def __init__(
        self,
        fleet: list[QPU] | None = None,
        policy=None,
        execution_model: ExecutionModel | None = None,
        *,
        trigger: SchedulingTrigger | None = None,
        config: SimulationConfig | None = None,
        shards: list[FleetShard] | None = None,
        balancer: str | ShardBalancer = "round_robin",
        rebalance: str | RebalancePolicy | None = None,
        availability: AvailabilityModel | None = None,
        cycle_executor: str | CycleExecutor | None = None,
        admission: AdmissionController | None = None,
    ) -> None:
        self.config = config or SimulationConfig()
        self.execution_model = execution_model or ExecutionModel(
            seed=self.config.seed
        )
        if shards is not None:
            if fleet is not None or policy is not None or trigger is not None:
                raise ValueError(
                    "pass either (fleet, policy[, trigger]) or shards, not both"
                )
            self.shards = list(shards)
        else:
            if fleet is None or policy is None:
                raise ValueError("need a fleet and a policy (or shards)")
            self.shards = [
                FleetShard(
                    0,
                    [SimulatedQPU(q) for q in fleet],
                    policy,
                    trigger or SchedulingTrigger(),
                )
            ]
        self.balancer = make_balancer(balancer)
        # Both adaptive subsystems default to off: static fleets stay
        # bit-identical to the pre-rebalancing simulator.
        self.rebalancer = (
            make_rebalancer(rebalance) if rebalance is not None else None
        )
        self.availability = availability
        # The multi-tenant front door (see repro.cloud.tenancy).  ``None``
        # — the default — bypasses admission entirely, as do untenanted
        # jobs under a controller, so tenancy-off runs stay bit-identical.
        self.admission = admission
        # The backend for concurrently-due scheduling cycles.  ``None``
        # consults the CYCLE_EXECUTOR environment variable and falls back
        # to serial; every backend is bit-identical by contract, so the
        # choice is purely a wall-clock decision.
        self.cycle_executor = make_cycle_executor(cycle_executor)
        self._owns_executor = not isinstance(cycle_executor, CycleExecutor)
        self._rng = np.random.default_rng(self.config.seed)

    @classmethod
    def sharded(
        cls,
        fleet: list[QPU],
        policy,
        *,
        num_shards: int,
        balancer: str | ShardBalancer = "least_loaded",
        execution_model: ExecutionModel | None = None,
        trigger_factory=None,
        config: SimulationConfig | None = None,
        rebalance: str | RebalancePolicy | None = None,
        availability: AvailabilityModel | None = None,
        cycle_executor: str | CycleExecutor | None = None,
        admission: AdmissionController | None = None,
    ) -> "CloudSimulator":
        """Partition ``fleet`` into ``num_shards`` shards.

        ``policy`` is either a prototype exposing ``spawn(shard_id)``
        (every scheduling policy does) or a callable
        ``shard_id -> policy`` building one instance per shard.
        ``trigger_factory`` (``shard_id -> SchedulingTrigger``) defaults
        to a fresh paper-default trigger per shard.  ``rebalance``
        (a strategy name or :class:`RebalancePolicy`) turns on
        work-stealing between the shards; ``availability`` injects
        maintenance windows and outages.
        """
        policy_factory = policy.spawn if hasattr(policy, "spawn") else policy
        shards = [
            FleetShard(
                i,
                [SimulatedQPU(q) for q in group],
                policy_factory(i),
                trigger_factory(i) if trigger_factory else SchedulingTrigger(),
            )
            for i, group in enumerate(partition_fleet(fleet, num_shards))
        ]
        return cls(
            execution_model=execution_model,
            config=config,
            shards=shards,
            balancer=balancer,
            rebalance=rebalance,
            availability=availability,
            cycle_executor=cycle_executor,
            admission=admission,
        )

    # -- single-shard compatibility views ------------------------------
    @property
    def backends(self) -> list[SimulatedQPU]:
        """Every simulated backend, in shard order."""
        return [b for shard in self.shards for b in shard.backends]

    @property
    def policy(self):
        return self.shards[0].policy

    @property
    def trigger(self) -> SchedulingTrigger:
        return self.shards[0].trigger

    @property
    def is_batched(self) -> bool:
        return self.shards[0].is_batched

    # ------------------------------------------------------------------
    def _dispatch(
        self,
        shard: FleetShard,
        job,
        qpu_name: str,
        now: float,
        metrics: SimulationMetrics,
        apps_by_job: dict,
        on_finish,
    ) -> None:
        if self.admission is not None:
            self.admission.track_dequeued(job)
        backend = next(b for b in shard.backends if b.name == qpu_name)
        record = backend.execute(job, now, self.execution_model, self._rng)
        # Dispatch != completion: the job is only *completed* when its
        # COMPLETION event folds inside the horizon (see ``complete``).
        metrics.dispatched_jobs += 1
        app = apps_by_job.pop(job.job_id, None)
        if app is not None:
            app.pre_seconds = record.classical_pre_seconds
            app.post_seconds = record.classical_post_seconds
            # Classical post-processing starts right after the quantum part;
            # classical waiting is ~zero (thousands of workers available).
            app.finish_time = job.finish_time + record.classical_post_seconds
            on_finish(app)

    def _fail(self, job, metrics, apps_by_job) -> None:
        if self.admission is not None:
            self.admission.track_dequeued(job)
        job.status = JobStatus.FAILED
        metrics.unschedulable_jobs += 1
        apps_by_job.pop(job.job_id, None)

    def _record_admission(
        self, job, decision: AdmissionDecision, metrics: SimulationMetrics
    ) -> None:
        bucket = metrics.per_tenant_admission.setdefault(
            job.tenant_id, {"admitted": 0, "degraded": 0, "rejected": 0}
        )
        if decision.action == "reject":
            bucket["rejected"] += 1
            metrics.admission_rejected += 1
        elif decision.action == "degrade":
            bucket["degraded"] += 1
            metrics.admission_degraded += 1
        else:
            bucket["admitted"] += 1

    def _run_cycles(
        self,
        shards: list[FleetShard],
        now: float,
        metrics,
        apps_by_job,
        on_finish,
    ) -> None:
        """Run one batched scheduling cycle per shard, as one engine batch.

        ``shards`` must already be in shard-id order.  Policies exposing
        the split cycle API (``begin_cycle`` / ``finish_cycle`` — the
        Qonductor scheduler) snapshot their inputs on the main thread
        first, with estimates prefetched through the shared cache; the
        pure optimization stage of the whole batch then runs on the cycle
        executor, and results fold back in shard-id order, so dispatch
        RNG draws, completion pushes, metrics, and cache updates are
        identical whichever backend — or worker — ran each cycle.
        Policies without the split API (e.g. batched FCFS) schedule
        inline during the fold, which is equally deterministic because
        shards own disjoint devices and queues.
        """
        if not shards:
            return
        metrics.cycle_batches += 1
        metrics.max_batch_cycles = max(metrics.max_batch_cycles, len(shards))
        plans = [
            (
                shard,
                shard.policy.begin_cycle(
                    shard.pending, shard.qpus, shard.waiting_map(now)
                )
                if hasattr(shard.policy, "begin_cycle")
                else None,
            )
            for shard in shards
        ]
        tasks = [
            plan.task
            for _, plan in plans
            if plan is not None and plan.task is not None
        ]
        if tasks:
            t0 = time.perf_counter()
            results = iter(self.cycle_executor.run(run_optimization, tasks))
            metrics.stage_seconds["optimize_wall"] = (
                metrics.stage_seconds.get("optimize_wall", 0.0)
                + time.perf_counter()
                - t0
            )
        for shard, plan in plans:
            if plan is None:
                schedule = shard.policy.schedule(
                    shard.pending, shard.qpus, shard.waiting_map(now)
                )
            else:
                result = next(results) if plan.task is not None else None
                schedule = shard.policy.finish_cycle(plan, result)
            self._apply_schedule(
                shard, schedule, now, metrics, apps_by_job, on_finish
            )

    def _apply_schedule(
        self, shard: FleetShard, schedule, now: float, metrics, apps_by_job,
        on_finish,
    ) -> None:
        """Fold one cycle's schedule back in: dispatch, fail, retain."""
        metrics.scheduling_cycles += 1
        stage = getattr(schedule, "stage_seconds", None)
        if stage:
            agg = metrics.stage_seconds
            for key, value in stage.items():
                agg[key] = agg.get(key, 0.0) + value
        # Pre-warm ground-truth components with one array pass per target
        # device over the whole dispatched set; the per-job execute() calls
        # below then hit the memo (and keep their RNG draw order).
        by_backend: dict[str, list] = {}
        for dec in schedule.decisions:
            by_backend.setdefault(dec.qpu_name, []).append(dec.job.metrics)
        for b in shard.backends:
            group = by_backend.get(b.name)
            if group:
                self.execution_model.components_batch(
                    group, b.qpu.calibration, b.qpu.model
                )
        for dec in schedule.decisions:
            dec.job.schedule_time = now
            self._dispatch(
                shard, dec.job, dec.qpu_name, now, metrics, apps_by_job,
                on_finish,
            )
        # Fail only jobs no device in the shard could *ever* serve.  A
        # job that fits a currently-offline QPU is a transient casualty
        # of an outage: it stays pending until the device recovers (or a
        # rebalance cycle migrates it to a shard that fits it now).
        retained: list = []
        for job in schedule.unschedulable:
            if any(b.num_qubits >= job.num_qubits for b in shard.backends):
                retained.append(job)
            else:
                self._fail(job, metrics, apps_by_job)
        shard.pending = retained

    def _schedule_immediate(
        self, shard: FleetShard, jobs: list, now: float, metrics, apps_by_job,
        on_finish,
    ) -> None:
        assignments = shard.policy.assign(
            jobs, shard.qpus, shard.waiting_map(now)
        )
        # One assign() call is one scheduling cycle, however many jobs it
        # covers — matching the batched path, so baseline-vs-Qonductor
        # cycle counts (Fig. 8/9) compare like for like.
        metrics.scheduling_cycles += 1
        for job, qpu_name in assignments:
            if qpu_name is None:
                self._fail(job, metrics, apps_by_job)
                continue
            job.schedule_time = now
            self._dispatch(
                shard, job, qpu_name, now, metrics, apps_by_job, on_finish
            )

    def _recalibrate(self, now: float) -> None:
        """Fleet-wide calibration cycle across every shard.

        Every shard policy's hook runs with the full fleet, so per-shard
        side effects (e.g. a Qonductor ``on_recalibrate`` callback) are
        never skipped; a cached estimator shared across shards stays
        single-invalidation because its own hook is idempotent per
        calibration wave (see ``CachedEstimator.on_recalibration``).
        """
        all_qpus = [b.qpu for b in self.backends]
        for qpu in all_qpus:
            qpu.recalibrate(timestamp=now)
        self.execution_model.on_recalibration()
        for shard in self.shards:
            hook = getattr(shard.policy, "on_recalibration", None)
            if hook is not None:
                hook(all_qpus)

    def _collect_cache_stats(self, metrics: SimulationMetrics) -> None:
        """Merge estimate-cache counters across the shards' policies."""
        stats_by_id: dict[int, object] = {}
        for shard in self.shards:
            fn = getattr(shard.policy, "estimate_fn", None)
            stats = getattr(fn, "stats", None)
            if stats is not None:
                stats_by_id[id(stats)] = stats
        if not stats_by_id:
            return
        unique = list(stats_by_id.values())
        if len(unique) == 1:
            metrics.estimate_cache = unique[0].as_dict()
            return
        hits = sum(s.hits for s in unique)
        misses = sum(s.misses for s in unique)
        lookups = hits + misses
        metrics.estimate_cache = {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
            "invalidations": sum(s.invalidations for s in unique),
        }

    # ------------------------------------------------------------------
    def run(
        self, apps: list[HybridApplication] | Iterable[HybridApplication]
    ) -> SimulationMetrics:
        """Simulate the full application stream; returns collected metrics.

        ``apps`` may be a list (sorted internally, kept by the caller) or
        any time-ordered iterator of applications — e.g.
        ``LoadGenerator.iter_arrivals`` — which is consumed lazily, one
        arrival ahead of simulated time.
        """
        try:
            return self._run(apps)
        finally:
            if self._owns_executor:
                # The executor was resolved from a name/env spec, so this
                # run is its only user: release the workers even when the
                # event loop raises (a later run() lazily rebuilds them).
                # Caller-supplied instances stay open for reuse.
                self.cycle_executor.close()

    def _run(
        self, apps: list[HybridApplication] | Iterable[HybridApplication]
    ) -> SimulationMetrics:
        cfg = self.config
        wall_start = time.perf_counter()
        metrics = SimulationMetrics()
        metrics.num_shards = len(self.shards)
        if isinstance(apps, list):
            stream: Iterator[HybridApplication] = iter(
                sorted(apps, key=lambda a: a.arrival_time)
            )
        else:
            stream = iter(apps)
        # Only in-flight applications (arrived, not yet dispatched) are
        # held here; entries are dropped on dispatch/rejection so memory
        # stays independent of the stream length.
        apps_by_job: dict[int, HybridApplication] = {}
        horizon = cfg.duration_seconds

        # Running completion aggregates (fed by COMPLETION events): plain
        # sums/counts, so each sample is O(backends) time and the
        # aggregate state is O(1) memory however many jobs complete.
        done_fid_sum = 0.0
        done_fid_count = 0
        done_jct_sum = 0.0
        done_jct_count = 0

        seq = itertools.count()
        heap: list[tuple[float, int, int, object]] = []

        def push(t: float, kind: EventType, payload=None) -> None:
            heapq.heappush(heap, (t, int(kind), next(seq), payload))

        def sample(t: float) -> None:
            if done_jct_count:
                if done_fid_count:
                    metrics.mean_fidelity.add(
                        t, done_fid_sum / done_fid_count
                    )
                metrics.mean_completion_time.add(
                    t, done_jct_sum / done_jct_count
                )
            busy = [
                max(0.0, b.busy_seconds - max(0.0, b.free_at - t))
                for shard in self.shards
                for b in shard.backends
            ]
            metrics.mean_utilization.add(
                t, float(np.mean([min(1.0, bu / max(t, 1e-9)) for bu in busy]))
            )
            metrics.scheduler_queue_size.add(
                t, sum(len(shard.pending) for shard in self.shards)
            )
            if len(self.shards) > 1:
                for shard in self.shards:
                    metrics.shard_queue_size.setdefault(
                        shard.shard_id, TimeSeries()
                    ).add(t, len(shard.pending))

        def complete(app: HybridApplication) -> None:
            nonlocal done_fid_sum, done_fid_count, done_jct_sum, done_jct_count
            if app.quantum_job.fidelity is not None:
                done_fid_sum += app.quantum_job.fidelity
                done_fid_count += 1
            done_jct_sum += app.completion_time
            done_jct_count += 1
            metrics.completed_jobs += 1
            # Per-tenant JCT / SLO accounting (tenant-tagged jobs only,
            # so untenanted runs never touch these dicts).
            job = app.quantum_job
            if job.tenant is not None:
                tid = job.tenant.tenant_id
                metrics.tenant_jct.setdefault(tid, []).append(
                    app.completion_time
                )
                metrics.tenant_tier.setdefault(tid, job.tenant.tier)
                slo = job.tenant.slo_jct_seconds
                if slo is not None and app.completion_time > slo:
                    metrics.slo_violations[tid] = (
                        metrics.slo_violations.get(tid, 0) + 1
                    )

        def on_finish(app: HybridApplication) -> None:
            push(app.finish_time, EventType.COMPLETION, app)

        def fire_if_ready(shard: FleetShard, now: float) -> None:
            """Run a batch cycle when the shard's trigger condition is
            met (shared by the arrival and rebalance paths; the TRIGGER
            deadline handler has its own flow — it always marks the
            trigger fired, even on an empty queue)."""
            if shard.trigger.should_fire(len(shard.pending), now):
                self._run_cycles(
                    [shard], now, metrics, apps_by_job, on_finish
                )
                shard.trigger.fired(now)
                push(
                    shard.trigger.next_deadline(now),
                    EventType.TRIGGER,
                    shard.shard_id,
                )

        first = next(stream, None)
        if first is not None:
            push(first.arrival_time, EventType.ARRIVAL, first)
        if cfg.sample_every_seconds < horizon:
            push(cfg.sample_every_seconds, EventType.SAMPLE, None)
        if cfg.recalibrate_every_seconds:
            push(cfg.recalibrate_every_seconds, EventType.RECALIBRATION, None)
        for shard in self.shards:
            if shard.is_batched:
                push(
                    shard.trigger.next_deadline(0.0),
                    EventType.TRIGGER,
                    shard.shard_id,
                )
        qpu_by_name: dict[str, QPU] = {
            b.name: b.qpu for shard in self.shards for b in shard.backends
        }
        offline_since: dict[str, float] = {}
        if self.availability is not None:
            for ev in self.availability.schedule(list(qpu_by_name), horizon):
                if ev.time < horizon:
                    push(ev.time, EventType.AVAILABILITY, ev)
        if (
            self.rebalancer is not None
            and len(self.shards) > 1
            and self.rebalancer.interval_seconds < horizon
        ):
            push(self.rebalancer.interval_seconds, EventType.REBALANCE)

        while heap and heap[0][0] < horizon:
            now, kind, _, payload = heapq.heappop(heap)
            metrics.events_processed += 1

            if kind == EventType.COMPLETION:
                complete(payload)

            elif kind == EventType.AVAILABILITY:
                qpu = qpu_by_name[payload.qpu_name]
                if payload.online and not qpu.online:
                    metrics.recovery_events += 1
                    went_down = offline_since.pop(payload.qpu_name, now)
                    metrics.qpu_downtime_seconds[payload.qpu_name] = (
                        metrics.qpu_downtime_seconds.get(payload.qpu_name, 0.0)
                        + (now - went_down)
                    )
                elif not payload.online and qpu.online:
                    metrics.outage_events += 1
                    offline_since[payload.qpu_name] = now
                qpu.online = payload.online

            elif kind == EventType.REBALANCE:
                moves = self.rebalancer.rebalance(self.shards, now)
                metrics.rebalance_cycles += 1
                metrics.jobs_migrated += len(moves)
                # A shard that just received work may be past its trigger
                # condition; fire it now instead of waiting for the next
                # deadline (mirrors the arrival path).
                receivers = sorted(
                    {m.dst for m in moves}, key=lambda s: s.shard_id
                )
                for shard in receivers:
                    if shard.is_batched:
                        fire_if_ready(shard, now)
                push(
                    now + self.rebalancer.interval_seconds,
                    EventType.REBALANCE,
                )

            elif kind == EventType.RECALIBRATION:
                self._recalibrate(now)
                push(now + cfg.recalibrate_every_seconds, EventType.RECALIBRATION)

            elif kind == EventType.SAMPLE:
                sample(now)
                push(now + cfg.sample_every_seconds, EventType.SAMPLE)

            elif kind == EventType.ARRIVAL:
                app = payload
                nxt = next(stream, None)
                if nxt is not None:
                    push(nxt.arrival_time, EventType.ARRIVAL, nxt)
                job = app.quantum_job
                # The multi-tenant front door: tenant-tagged arrivals are
                # checked against their contract *before* routing.  A
                # rejection sheds the job at the API edge (it is never
                # queued, dispatched, or counted in-flight); a degrade
                # admits it as best-effort.
                if self.admission is not None and job.tenant is not None:
                    decision = self.admission.admit(job, now)
                    self._record_admission(job, decision, metrics)
                    if not decision.admitted:
                        job.status = JobStatus.REJECTED
                        continue
                    if decision.action == "degrade":
                        job.best_effort = True
                job.status = JobStatus.QUEUED
                apps_by_job[job.job_id] = app
                metrics.peak_inflight_apps = max(
                    metrics.peak_inflight_apps, len(apps_by_job)
                )
                shard = self.balancer.route(job, self.shards, now)
                shard.jobs_routed += 1
                if shard.is_batched:
                    shard.pending.append(job)
                    if self.admission is not None:
                        self.admission.track_queued(job)
                    fire_if_ready(shard, now)
                else:
                    self._schedule_immediate(
                        shard, [job], now, metrics, apps_by_job, on_finish
                    )

            elif kind == EventType.TRIGGER:
                # Coalesce every TRIGGER deadline landing at this same
                # simulated instant into one engine batch.  TRIGGER is
                # the highest-priority-value event kind, so every other
                # same-time event has already been folded in; the batch
                # executes in shard-id order (one canonical order for
                # every executor backend), which is what keeps parallel
                # runs bit-identical to serial ones.
                due: list[FleetShard] = []
                seen: set[int] = set()

                def consider(shard_id: int) -> None:
                    if shard_id in seen:
                        return  # duplicate deadline: stale by definition
                    shard = self.shards[shard_id]
                    if now < shard.trigger.next_deadline(now):
                        return  # stale deadline: the trigger fired meanwhile
                    seen.add(shard_id)
                    due.append(shard)

                consider(payload)
                while (
                    heap
                    and heap[0][0] == now
                    and heap[0][1] == int(EventType.TRIGGER)
                ):
                    _, _, _, late = heapq.heappop(heap)
                    metrics.events_processed += 1
                    consider(late)
                due.sort(key=lambda s: s.shard_id)
                firing = [
                    s
                    for s in due
                    if s.trigger.should_fire(len(s.pending), now)
                ]
                self._run_cycles(
                    firing, now, metrics, apps_by_job, on_finish
                )
                for shard in due:
                    shard.trigger.fired(now)
                    push(
                        shard.trigger.next_deadline(now),
                        EventType.TRIGGER,
                        shard.shard_id,
                    )

        # Final flush and bookkeeping: schedule leftovers at the horizon
        # (one engine batch over every backlogged shard, like an aligned
        # deadline), fold in completions that land inside it, and take
        # the last sample.
        self._run_cycles(
            [s for s in self.shards if s.is_batched and s.pending],
            horizon, metrics, apps_by_job, on_finish,
        )
        while heap:
            t, kind, _, payload = heapq.heappop(heap)
            if kind == EventType.COMPLETION and t <= horizon:
                metrics.events_processed += 1
                complete(payload)
        sample(horizon)
        # Devices still down at the horizon accrue downtime to the end.
        for name, went_down in offline_since.items():
            metrics.qpu_downtime_seconds[name] = (
                metrics.qpu_downtime_seconds.get(name, 0.0)
                + (horizon - went_down)
            )
        # Jobs still pending (held through an outage outliving the run)
        # are reported rather than silently dropped from the counters.
        metrics.pending_at_horizon = sum(
            len(shard.pending) for shard in self.shards
        )
        for shard in self.shards:
            metrics.per_shard_jobs[shard.shard_id] = shard.jobs_routed
            if self.rebalancer is not None:
                metrics.per_shard_steals[shard.shard_id] = {
                    "in": shard.jobs_stolen_in,
                    "out": shard.jobs_stolen_out,
                }
            for b in shard.backends:
                metrics.per_qpu_busy_seconds[b.name] = b.busy_seconds
                metrics.per_qpu_jobs[b.name] = b.jobs_executed
        self._collect_cache_stats(metrics)
        metrics.wall_seconds = time.perf_counter() - wall_start
        return metrics
