"""Metrics collection for cloud simulations (§8.1's three metrics)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["TimeSeries", "SimulationMetrics"]


@dataclass
class TimeSeries:
    """A (time, value) series with convenience accessors."""

    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def add(self, t: float, v: float) -> None:
        self.times.append(float(t))
        self.values.append(float(v))

    def mean(self) -> float:
        return float(np.mean(self.values)) if self.values else 0.0

    def last(self) -> float:
        return self.values[-1] if self.values else 0.0

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.array(self.times), np.array(self.values)


@dataclass
class SimulationMetrics:
    """Everything a cloud-simulation run reports."""

    mean_fidelity: TimeSeries = field(default_factory=TimeSeries)
    mean_completion_time: TimeSeries = field(default_factory=TimeSeries)
    mean_utilization: TimeSeries = field(default_factory=TimeSeries)
    scheduler_queue_size: TimeSeries = field(default_factory=TimeSeries)
    per_qpu_busy_seconds: dict[str, float] = field(default_factory=dict)
    per_qpu_jobs: dict[str, int] = field(default_factory=dict)
    #: Jobs whose COMPLETION event folded inside the horizon.  A job
    #: dispatched near the end of the run may finish after it; those
    #: count as dispatched but not completed.
    completed_jobs: int = 0
    #: Jobs handed to a device queue (assignment succeeded).
    dispatched_jobs: int = 0
    unschedulable_jobs: int = 0
    #: Jobs still pending when the run ended — e.g. held through an
    #: outage that outlived the horizon.  Every arrival lands in exactly
    #: one of dispatched / unschedulable / pending_at_horizon.
    pending_at_horizon: int = 0
    scheduling_cycles: int = 0
    #: Fleet-layer accounting: shard count, jobs routed per shard, and
    #: (for multi-shard runs) each shard's pending-queue series alongside
    #: the merged ``scheduler_queue_size``.
    num_shards: int = 1
    per_shard_jobs: dict[int, int] = field(default_factory=dict)
    shard_queue_size: dict[int, TimeSeries] = field(default_factory=dict)
    #: Work-stealing accounting (only populated when a rebalancer runs):
    #: rebalance cycles executed, pending jobs migrated, and each shard's
    #: ``{"in": stolen_in, "out": stolen_out}`` totals.
    rebalance_cycles: int = 0
    jobs_migrated: int = 0
    per_shard_steals: dict[int, dict[str, int]] = field(default_factory=dict)
    #: Dynamic-availability accounting: offline/online flips folded into
    #: the run and the total seconds each QPU spent offline.
    outage_events: int = 0
    recovery_events: int = 0
    qpu_downtime_seconds: dict[str, float] = field(default_factory=dict)
    #: Peak number of applications held in flight (arrived but not yet
    #: dispatched).  Streaming runs keep this independent of stream length.
    peak_inflight_apps: int = 0
    #: Event-core accounting: how many discrete events the simulator
    #: processed (arrivals, completions, triggers, samples, recalibrations)
    #: and how long the run took in wall-clock seconds.
    events_processed: int = 0
    wall_seconds: float = 0.0
    #: Parallel-engine accounting: scheduling-cycle batches executed
    #: (same-instant trigger deadlines coalesce into one batch) and the
    #: widest batch seen — >1 means cycles actually overlapped.
    cycle_batches: int = 0
    max_batch_cycles: int = 0
    #: Accumulated per-stage wall seconds across every scheduling cycle
    #: (``preprocess`` / ``optimize`` / ``select`` summed over cycles,
    #: plus ``optimize_wall``: what the optimization stage cost the event
    #: loop per batch — under a parallel executor this is the max over
    #: workers, not the sum, and under the pipelined engine it is
    #: overlap-adjusted: submit cost plus however long the fold still had
    #: to block, i.e. only the part the event loop could not hide).
    stage_seconds: dict = field(default_factory=dict)
    #: Pipelined-engine accounting (simulated time, so deterministic):
    #: batches whose fold popped *after* their trigger instant (a modeled
    #: ``cycle_latency`` was in effect) and the summed trigger->fold lag.
    pipelined_batches: int = 0
    fold_lag_seconds: float = 0.0
    #: TRIGGER events that fired early because they fell inside the
    #: ε-window of a coalescing batch head (``trigger_epsilon > 0``).
    epsilon_merged_triggers: int = 0
    #: Estimate-cache counters, when the scheduling policy exposes a cache.
    estimate_cache: dict = field(default_factory=dict)
    #: Multi-tenancy accounting (see :mod:`repro.cloud.tenancy`); only
    #: populated when jobs carry tenants / an admission controller runs.
    #: Front-door outcomes per tenant: ``{"admitted": n, "degraded": n,
    #: "rejected": n}`` (degraded jobs are admitted as best-effort).
    per_tenant_admission: dict[str, dict[str, int]] = field(
        default_factory=dict
    )
    #: Arrivals shed at the front door (rate limit or queue quota).
    admission_rejected: int = 0
    #: Arrivals degraded to best-effort on a queue-quota breach.
    admission_degraded: int = 0
    #: Completed-job JCTs per tenant (raw, for percentile reporting).
    tenant_jct: dict[str, list[float]] = field(default_factory=dict)
    #: Tenant -> contracted service tier, recorded as tenants are seen.
    tenant_tier: dict[str, int] = field(default_factory=dict)
    #: Completed jobs per tenant that blew their tenant's JCT SLO.
    slo_violations: dict[str, int] = field(default_factory=dict)

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.events_processed / self.wall_seconds

    #: The **exclusion allowlist** of ``deterministic_state``: the only
    #: fields allowed to differ between two runs of the same seeded
    #: scenario, because they measure wall-clock rather than simulated
    #: behavior.  Every other field — including any field added later —
    #: is compared by default; a name listed here that is not a real
    #: field is an error (it would silently exclude nothing).
    TIMING_FIELDS = ("wall_seconds", "stage_seconds")

    def deterministic_state(self) -> dict:
        """Every field except wall-clock timings, in comparable form.

        Two runs of the same seeded scenario — serial or parallel, any
        executor backend — must produce equal ``deterministic_state()``
        dicts.  ``TimeSeries`` fields compare as (times, values) tuples.
        New fields are included automatically: only the explicit
        ``TIMING_FIELDS`` allowlist is excluded, and the allowlist is
        validated against the actual field set so a typo'd or stale
        entry fails loudly instead of silently comparing nothing.
        """
        fields_present = set(vars(self))
        unknown = set(self.TIMING_FIELDS) - fields_present
        if unknown:
            raise AttributeError(
                "TIMING_FIELDS names absent from SimulationMetrics: "
                f"{sorted(unknown)} — the exclusion allowlist must list "
                "real fields only"
            )
        state = {}
        for name, value in vars(self).items():
            if name in self.TIMING_FIELDS:
                continue
            if isinstance(value, TimeSeries):
                value = (tuple(value.times), tuple(value.values))
            elif isinstance(value, dict) and any(
                isinstance(v, TimeSeries) for v in value.values()
            ):
                value = {
                    k: (tuple(v.times), tuple(v.values))
                    for k, v in value.items()
                }
            state[name] = value
        return state

    # -- multi-tenancy reporting ---------------------------------------
    def jain_fairness(self) -> float:
        """Jain's index over per-tenant mean JCT (1.0 = perfectly fair)."""
        from .tenancy import jain_index

        means = [
            float(np.mean(v)) for v in self.tenant_jct.values() if v
        ]
        return jain_index(means)

    def tenant_report(self) -> dict:
        """Per-tenant and per-tier JCT percentiles, fairness, and SLOs.

        Empty when the run carried no tenants.  Percentiles are over the
        completed jobs' JCTs; tiers aggregate every tenant contracted at
        that tier.
        """
        if not self.tenant_jct:
            return {}
        per_tenant = {}
        by_tier: dict[int, list[float]] = {}
        for tid in sorted(self.tenant_jct):
            values = self.tenant_jct[tid]
            tier = self.tenant_tier.get(tid)
            if tier is not None:
                by_tier.setdefault(tier, []).extend(values)
            per_tenant[tid] = {
                "tier": tier,
                "completed": len(values),
                "mean_jct": round(float(np.mean(values)), 3),
                "p50_jct": round(float(np.percentile(values, 50)), 3),
                "p95_jct": round(float(np.percentile(values, 95)), 3),
                "p99_jct": round(float(np.percentile(values, 99)), 3),
                "slo_violations": self.slo_violations.get(tid, 0),
                "admission": dict(
                    self.per_tenant_admission.get(tid, {})
                ),
            }
        per_tier = {
            tier: {
                "completed": len(values),
                "mean_jct": round(float(np.mean(values)), 3),
                "p95_jct": round(float(np.percentile(values, 95)), 3),
            }
            for tier, values in sorted(by_tier.items())
        }
        return {
            "per_tenant": per_tenant,
            "per_tier": per_tier,
            "jain_fairness": round(self.jain_fairness(), 4),
            "admission_rejected": self.admission_rejected,
            "admission_degraded": self.admission_degraded,
            "slo_violations": sum(self.slo_violations.values()),
        }

    def summary(self) -> dict:
        loads = list(self.per_qpu_busy_seconds.values())
        load_spread = 0.0
        load_cv = 0.0
        if loads and max(loads) > 0:
            load_spread = (max(loads) - min(loads)) / max(loads)
            load_cv = float(np.std(loads) / max(1e-9, np.mean(loads)))
        return {
            "load_cv": load_cv,
            "num_shards": self.num_shards,
            "per_shard_jobs": dict(self.per_shard_jobs),
            "peak_inflight_apps": self.peak_inflight_apps,
            "events_processed": self.events_processed,
            "events_per_second": round(self.events_per_second, 1),
            "estimate_cache": dict(self.estimate_cache),
            "completed_jobs": self.completed_jobs,
            "dispatched_jobs": self.dispatched_jobs,
            "unschedulable_jobs": self.unschedulable_jobs,
            "pending_at_horizon": self.pending_at_horizon,
            "scheduling_cycles": self.scheduling_cycles,
            "cycle_batches": self.cycle_batches,
            "pipelined_batches": self.pipelined_batches,
            "fold_lag_seconds": round(self.fold_lag_seconds, 3),
            "epsilon_merged_triggers": self.epsilon_merged_triggers,
            "rebalance_cycles": self.rebalance_cycles,
            "jobs_migrated": self.jobs_migrated,
            "per_shard_steals": dict(self.per_shard_steals),
            "outage_events": self.outage_events,
            "recovery_events": self.recovery_events,
            "admission_rejected": self.admission_rejected,
            "admission_degraded": self.admission_degraded,
            "mean_fidelity": self.mean_fidelity.mean(),
            "final_mean_jct": self.mean_completion_time.last(),
            "mean_utilization": self.mean_utilization.mean(),
            "max_load_spread": load_spread,
            "per_qpu_busy_seconds": dict(self.per_qpu_busy_seconds),
        }
