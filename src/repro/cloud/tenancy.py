"""The multi-tenant front door: tenants, tiers, and admission control.

The paper stops at per-job priorities (Fig. 10b); a cloud serving
millions of users needs *tenants*.  This module adds the three pieces
that sit between the load generator and the fleet layer:

* :class:`Tenant` — identity plus contract: a service **tier** (0 is the
  premium tier), an optional token-bucket **rate limit**, an optional
  fleet-wide pending **queue-depth quota**, and an optional JCT **SLO**.
  Jobs carry their tenant; everything downstream (balancers, policies,
  metrics) reads it from the job.
* :class:`AdmissionController` — the front door.  Every tenant-tagged
  arrival is checked against its tenant's token bucket (refilled at the
  contracted rate, burst-bounded) and its fleet-wide pending-queue
  quota.  Rate-limited jobs are **rejected** outright, exactly like real
  QPU clouds shedding load at the API edge; quota breaches either
  **degrade** the job to best-effort (it keeps running, at the back of
  every tier-ordered batch) or reject it, per ``quota_action``.
* Tier-weighted scheduling helpers — :func:`tier_sort` orders a batch by
  effective tier (premium first, best-effort last) while preserving
  arrival order within a tier, and :func:`tier_preference` maps the
  most-premium tier present in a batch onto an MCDM preference vector so
  the Qonductor selection stage leans toward JCT when premium work is
  waiting.

Everything here is opt-in and deterministic.  A run without tenants (no
``tenants=`` mix on the load generator, no controller on the simulator)
takes none of these code paths and stays **bit-identical** to the
pre-tenancy simulator — enforced by ``tests/test_tenancy.py`` through
the shared determinism harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "BEST_EFFORT_TIER",
    "Tenant",
    "TenantShare",
    "AdmissionDecision",
    "AdmissionController",
    "effective_tier",
    "tier_sort",
    "tier_preference",
    "jain_index",
    "abusive_mix",
]

#: Effective tier assigned to degraded (best-effort) jobs: below every
#: contracted tier, so they sort to the back of any tier-ordered batch.
BEST_EFFORT_TIER = 99


@dataclass(frozen=True)
class Tenant:
    """One tenant's identity and service contract.

    ``tier`` 0 is the premium tier; larger numbers are cheaper tiers.
    ``rate_limit_per_hour`` bounds the tenant's sustained admission rate
    (token bucket, ``burst`` tokens deep); ``queue_quota`` bounds how
    many of the tenant's jobs may sit pending fleet-wide at once.
    ``None`` disables the corresponding check.
    """

    tenant_id: str
    tier: int = 1
    rate_limit_per_hour: float | None = None
    burst: int = 10
    queue_quota: int | None = None
    slo_jct_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.tier < 0:
            raise ValueError("tier must be >= 0")
        if self.rate_limit_per_hour is not None and self.rate_limit_per_hour <= 0:
            raise ValueError("rate_limit_per_hour must be > 0")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.queue_quota is not None and self.queue_quota < 1:
            raise ValueError("queue_quota must be >= 1")


@dataclass(frozen=True)
class TenantShare:
    """One entry of a load generator tenant mix: who, and how much."""

    tenant: Tenant
    share: float

    def __post_init__(self) -> None:
        if self.share <= 0:
            raise ValueError("share must be > 0")


def abusive_mix(
    *,
    num_normal: int = 3,
    abuser_share: float = 0.5,
    abuser_rate_limit_per_hour: float | None = None,
    abuser_queue_quota: int | None = 20,
    normal_slo_seconds: float | None = None,
) -> tuple[TenantShare, ...]:
    """The noisy-neighbor stress mix: one abusive tenant vs normal ones.

    ``num_normal`` well-behaved tenants (tenant-0 premium, the rest
    tier 1) split the non-abusive share evenly; the ``abuser`` (tier 2)
    floods ``abuser_share`` of all arrivals.  The abuser's contract
    carries the rate limit / queue quota an admission controller would
    enforce — without a controller the contract is dead letter, which is
    exactly the comparison the tenant studies run.
    """
    if not 0.0 < abuser_share < 1.0:
        raise ValueError("abuser_share must be in (0, 1)")
    normal_share = (1.0 - abuser_share) / num_normal
    shares = [
        TenantShare(
            Tenant(
                f"tenant-{i}",
                tier=0 if i == 0 else 1,
                slo_jct_seconds=normal_slo_seconds,
            ),
            normal_share,
        )
        for i in range(num_normal)
    ]
    shares.append(
        TenantShare(
            Tenant(
                "abuser",
                tier=2,
                rate_limit_per_hour=abuser_rate_limit_per_hour,
                queue_quota=abuser_queue_quota,
            ),
            abuser_share,
        )
    )
    return tuple(shares)


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one front-door check."""

    action: str  # "admit" | "degrade" | "reject"
    reason: str = "ok"  # "ok" | "rate_limit" | "queue_quota"

    @property
    def admitted(self) -> bool:
        return self.action != "reject"


class AdmissionController:
    """Token-bucket rate limiting + queue-depth quotas, per tenant.

    The controller sits between arrivals and the shard balancer: the
    simulator asks :meth:`admit` for every tenant-tagged arrival before
    routing it.  Two independent checks, in order:

    1. **Rate limit** — each tenant with a ``rate_limit_per_hour`` owns a
       token bucket of depth ``burst`` refilled continuously at the
       contracted rate; an arrival with no token available is rejected
       (the API-edge shed of real QPU clouds).
    2. **Queue quota** — a tenant with ``queue_quota`` may hold at most
       that many jobs pending (admitted, not yet dispatched) fleet-wide;
       a breach either degrades the job to best-effort
       (``quota_action="degrade"``, the default — it runs, but behind
       every contracted tier) or rejects it (``quota_action="reject"``).

    Jobs without a tenant bypass the front door entirely.  All state is
    a deterministic function of the admission/dequeue call sequence, so
    seeded simulations reproduce bit-for-bit.
    """

    def __init__(self, *, quota_action: str = "degrade") -> None:
        if quota_action not in ("degrade", "reject"):
            raise ValueError("quota_action must be 'degrade' or 'reject'")
        self.quota_action = quota_action
        # Token buckets: tenant_id -> [tokens, last_refill_time].
        self._buckets: dict[str, list[float]] = {}
        # Fleet-wide pending-queue depth per tenant, maintained by the
        # simulator via track_queued/track_dequeued.
        self._pending: dict[str, int] = {}
        self._queued_ids: set[int] = set()

    # -- checks --------------------------------------------------------
    def admit(self, job, now: float) -> AdmissionDecision:
        """Front-door check for one arrival (tenant-tagged jobs only)."""
        tenant: Tenant | None = job.tenant
        if tenant is None:
            return AdmissionDecision("admit")
        if tenant.rate_limit_per_hour is not None and not self._take_token(
            tenant, now
        ):
            return AdmissionDecision("reject", "rate_limit")
        if (
            tenant.queue_quota is not None
            and self._pending.get(tenant.tenant_id, 0) >= tenant.queue_quota
        ):
            return AdmissionDecision(self.quota_action, "queue_quota")
        return AdmissionDecision("admit")

    def _take_token(self, tenant: Tenant, now: float) -> bool:
        bucket = self._buckets.get(tenant.tenant_id)
        if bucket is None:
            # A fresh bucket starts full: a tenant's first burst is never
            # penalized for history it does not have.
            bucket = [float(tenant.burst), now]
            self._buckets[tenant.tenant_id] = bucket
        tokens, last = bucket
        rate = tenant.rate_limit_per_hour / 3600.0
        tokens = min(float(tenant.burst), tokens + (now - last) * rate)
        if tokens < 1.0:
            bucket[0] = tokens
            bucket[1] = now
            return False
        bucket[0] = tokens - 1.0
        bucket[1] = now
        return True

    # -- pending-depth accounting (driven by the simulator) ------------
    def track_queued(self, job) -> None:
        """An admitted job entered a shard's pending queue."""
        if job.tenant is None or job.job_id in self._queued_ids:
            return
        self._queued_ids.add(job.job_id)
        tid = job.tenant.tenant_id
        self._pending[tid] = self._pending.get(tid, 0) + 1

    def track_dequeued(self, job) -> None:
        """A tracked job left the pending state (dispatched or failed)."""
        if job.job_id not in self._queued_ids:
            return
        self._queued_ids.discard(job.job_id)
        tid = job.tenant.tenant_id
        self._pending[tid] -= 1
        if self._pending[tid] <= 0:
            del self._pending[tid]

    def pending_depth(self, tenant_id: str) -> int:
        return self._pending.get(tenant_id, 0)


# ---------------------------------------------------------------------------
# Tier-weighted scheduling helpers
# ---------------------------------------------------------------------------

def effective_tier(job) -> int:
    """A job's scheduling tier: degraded jobs fall to best-effort."""
    if getattr(job, "best_effort", False):
        return BEST_EFFORT_TIER
    tenant = getattr(job, "tenant", None)
    return tenant.tier if tenant is not None else BEST_EFFORT_TIER


def tier_sort(jobs: list) -> list:
    """Batch order for tier-weighted scheduling.

    Premium tiers first, best-effort last, arrival order preserved
    within a tier (the sort is stable over the incoming order).  When no
    job in the batch carries a tenant the input list is returned
    *unchanged* — same object, no reordering — so tenancy-off runs take
    a provably identical path.
    """
    if not any(
        getattr(j, "tenant", None) is not None
        or getattr(j, "best_effort", False)
        for j in jobs
    ):
        return jobs
    return sorted(jobs, key=effective_tier)


def tier_preference(jobs: list, tier_preferences: dict | None):
    """MCDM preference override for a batch, from its most-premium tier.

    ``tier_preferences`` maps tier -> preference (a name from
    :data:`repro.moo.mcdm.PREFERENCES` or an explicit vector).  The
    batch is scheduled under the preference of the best (lowest) tier
    present — premium work waiting pulls the whole cycle toward its
    preference.  Returns ``None`` (keep the operator default) when the
    mapping is unset or no tiered job is present.
    """
    if not tier_preferences:
        return None
    tiers = [
        j.tenant.tier
        for j in jobs
        if getattr(j, "tenant", None) is not None
        and not getattr(j, "best_effort", False)
    ]
    if not tiers:
        return None
    return tier_preferences.get(min(tiers))


def jain_index(values) -> float:
    """Jain's fairness index over per-tenant allocations: (Σx)²/(n·Σx²).

    1.0 is perfectly fair; 1/n means one tenant holds everything.
    Empty or all-zero inputs return 1.0 (nothing to be unfair about).
    """
    x = np.asarray(list(values), dtype=float)
    if x.size == 0:
        return 1.0
    denom = x.size * float((x**2).sum())
    if denom <= 0.0:
        return 1.0
    return float(x.sum()) ** 2 / denom
