"""Dynamic QPU availability: maintenance windows and random outages.

The paper's cloud model assumes a static, always-online fleet, yet its
own motivation (queue imbalance, calibration-driven quality swings)
implies devices come and go: providers schedule maintenance, devices
fail and recover mid-run.  :class:`AvailabilityModel` turns both into a
deterministic, pre-computed stream of :class:`AvailabilityEvent`s that
the cloud simulator folds into its event heap, flipping each
:attr:`QPU.online <repro.backends.qpu.QPU.online>` flag at the event's
simulated timestamp.

Semantics:

* An offline device accepts **no new assignments** — shard feasibility
  (:meth:`FleetShard.fits <repro.cloud.fleet.FleetShard.fits>`),
  balancer routing, scheduler preprocessing, and the baseline policies
  are all online-aware.  Work already dispatched to the device keeps its
  committed finish time (the execution model assigns finish times at
  dispatch), modeling jobs that drain before the window starts.  Jobs
  *pending* on a batched shard whose feasible devices are transiently
  offline stay queued until recovery (or migration); only jobs no
  device in the shard could ever serve are failed.
* Per QPU, maintenance windows and sampled outages are merged into
  disjoint offline intervals before events are emitted, so the flag
  never flaps inside an overlap and every offline event has exactly one
  matching recovery (or none, when the device stays down through the
  end of the run).
* Everything is derived from the model's seed: two identical runs see
  identical outage schedules.
"""

from __future__ import annotations

import zlib
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = [
    "AvailabilityEvent",
    "MaintenanceWindow",
    "AvailabilityModel",
    "flash_outage",
]


@dataclass(frozen=True)
class AvailabilityEvent:
    """One availability flip: ``qpu_name`` goes on/offline at ``time``."""

    time: float
    qpu_name: str
    online: bool
    cause: str = "outage"  # "outage" | "maintenance"


@dataclass(frozen=True)
class MaintenanceWindow:
    """A scheduled offline interval ``[start, end)`` for one device.

    ``cause`` labels the emitted events; planned windows default to
    ``"maintenance"``, while :func:`flash_outage` stamps its correlated
    windows ``"outage"``.
    """

    qpu_name: str
    start: float
    end: float
    cause: str = "maintenance"

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("maintenance window must have end > start")


def _merge_intervals(
    intervals: list[tuple[float, float, str]],
) -> list[tuple[float, float, str]]:
    """Union of ``(start, end, cause)`` intervals; earliest cause wins."""
    merged: list[tuple[float, float, str]] = []
    for start, end, cause in sorted(intervals):
        if merged and start <= merged[-1][1]:
            last_start, last_end, last_cause = merged[-1]
            merged[-1] = (last_start, max(last_end, end), last_cause)
        else:
            merged.append((start, end, cause))
    return merged


class AvailabilityModel:
    """Deterministic availability schedule over a fleet.

    Parameters
    ----------
    windows:
        Planned :class:`MaintenanceWindow`\\ s (any order).
    mean_time_between_outages_s:
        Per-QPU mean gap between random outages (exponential); ``0``
        disables random outages entirely.
    mean_outage_seconds:
        Mean duration of one random outage (exponential).
    seed:
        Seeds the outage sampling; each QPU draws from a substream keyed
        on its *name* (not its position), so adding, removing, or
        re-sharding devices never reshuffles the others' schedules.
    """

    def __init__(
        self,
        *,
        windows: Sequence[MaintenanceWindow] = (),
        mean_time_between_outages_s: float = 0.0,
        mean_outage_seconds: float = 900.0,
        seed: int = 0,
    ) -> None:
        if mean_time_between_outages_s < 0:
            raise ValueError("mean_time_between_outages_s must be >= 0")
        if mean_outage_seconds <= 0:
            raise ValueError("mean_outage_seconds must be > 0")
        self.windows = list(windows)
        self.mean_time_between_outages_s = mean_time_between_outages_s
        self.mean_outage_seconds = mean_outage_seconds
        self.seed = seed

    def _sample_outages(
        self, qpu_name: str, duration: float
    ) -> list[tuple[float, float, str]]:
        """Random offline intervals for one device, keyed on its name."""
        if not self.mean_time_between_outages_s:
            return []
        rng = np.random.default_rng(
            (self.seed, zlib.crc32(qpu_name.encode()))
        )
        out: list[tuple[float, float, str]] = []
        t = 0.0
        while True:
            t += float(rng.exponential(self.mean_time_between_outages_s))
            if t >= duration:
                return out
            down = float(rng.exponential(self.mean_outage_seconds))
            out.append((t, t + down, "outage"))
            t += down

    def schedule(
        self, qpu_names: Sequence[str], duration: float
    ) -> list[AvailabilityEvent]:
        """All availability flips inside ``[0, duration)``, time-ordered.

        Offline intervals per device are the union of its maintenance
        windows and sampled outages; a recovery event is emitted only
        when the interval ends inside the horizon.
        """
        by_name: dict[str, list[tuple[float, float, str]]] = {
            name: [] for name in qpu_names
        }
        unknown = sorted({
            w.qpu_name for w in self.windows if w.qpu_name not in by_name
        })
        if unknown:
            raise ValueError(
                f"maintenance windows name unknown QPUs {unknown}; "
                f"fleet has {sorted(by_name)}"
            )
        for w in self.windows:
            if w.start < duration:
                by_name[w.qpu_name].append((w.start, w.end, w.cause))
        for name in qpu_names:
            by_name[name].extend(self._sample_outages(name, duration))

        events: list[AvailabilityEvent] = []
        for name, intervals in by_name.items():
            for start, end, cause in _merge_intervals(intervals):
                if start >= duration:
                    continue
                events.append(AvailabilityEvent(start, name, False, cause))
                if end < duration:
                    events.append(AvailabilityEvent(end, name, True, cause))
        # Offline before online at identical timestamps, then by name, so
        # the fold order is reproducible whatever dict order produced it.
        events.sort(key=lambda e: (e.time, e.online, e.qpu_name))
        return events


def flash_outage(
    qpu_names: Sequence[str], *, start: float, duration_seconds: float
) -> AvailabilityModel:
    """A model that takes ``qpu_names`` down together for one window.

    The worst-case correlated failure (shared cryostat, network cut):
    every named device goes offline at ``start`` and recovers
    ``duration_seconds`` later.
    """
    return AvailabilityModel(
        windows=[
            MaintenanceWindow(
                name, start, start + duration_seconds, cause="outage"
            )
            for name in qpu_names
        ]
    )
