"""Synthetic cloud load generation (§8.2).

The paper monitored IBM's queues for ten days in November 2023 and found
arrival rates between 1100 and 2050 jobs/hour, averaging 1500 j/h, with a
diurnal pattern. The load generator reproduces that: a sinusoidal diurnal
rate profile bounded to the observed band, Poisson arrivals within it, and
hybrid applications drawn from the workload sampler (random algorithms,
normal widths, random shots, ~50 % requesting error mitigation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..mitigation.stack import STANDARD_STACKS
from .job import HybridApplication, QuantumJob
from ..workloads.suite import WorkloadSampler

__all__ = ["LoadGenerator", "diurnal_rate", "IBM_MEAN_RATE", "IBM_RATE_BAND"]

IBM_MEAN_RATE = 1500.0  # jobs/hour (paper's measured average)
IBM_RATE_BAND = (1100.0, 2050.0)  # jobs/hour (paper's measured range)

#: Mitigation presets jobs draw from (weighted toward the cheap stacks).
_MITIGATED_PRESETS = ["rem", "dd", "dd+rem", "zne", "zne+rem", "dd+zne+rem"]


def diurnal_rate(
    hour_of_day: float,
    mean_rate: float = IBM_MEAN_RATE,
    band: tuple[float, float] = IBM_RATE_BAND,
) -> float:
    """Sinusoidal day profile peaking mid-day, clipped to the IBM band."""
    lo, hi = band
    amplitude = (hi - lo) / 2.0
    rate = mean_rate + amplitude * np.sin((hour_of_day - 8.0) / 24.0 * 2 * np.pi)
    return float(np.clip(rate, lo * mean_rate / IBM_MEAN_RATE, hi * mean_rate / IBM_MEAN_RATE))


@dataclass
class LoadGenerator:
    """Draws timestamped hybrid applications."""

    mean_rate_per_hour: float = IBM_MEAN_RATE
    mitigation_fraction: float = 0.5
    mean_qubits: float = 6.0
    std_qubits: float = 3.0
    max_qubits: int = 27
    diurnal: bool = True
    keep_circuits: bool = False
    #: Optional discrete shot grid (round numbers, as real users request);
    #: None keeps the paper's log-uniform continuum.
    shots_grid: tuple[int, ...] | None = None
    seed: int = 0

    def generate(self, duration_seconds: float) -> list[HybridApplication]:
        """All arrivals in [0, duration), sorted by arrival time."""
        rng = np.random.default_rng(self.seed)
        sampler = WorkloadSampler(
            mean_qubits=self.mean_qubits,
            std_qubits=self.std_qubits,
            max_qubits=self.max_qubits,
            mitigation_fraction=self.mitigation_fraction,
            shots_choices=self.shots_grid,
            seed=self.seed + 1,
        )
        apps: list[HybridApplication] = []
        t = 0.0
        while True:
            hour = (t / 3600.0) % 24.0
            rate = (
                diurnal_rate(hour, self.mean_rate_per_hour)
                if self.diurnal
                else self.mean_rate_per_hour
            )
            t += rng.exponential(3600.0 / rate)
            if t >= duration_seconds:
                break
            sampled = sampler.sample()
            if sampled.uses_mitigation:
                mitigation = _MITIGATED_PRESETS[
                    int(rng.integers(len(_MITIGATED_PRESETS)))
                ]
            else:
                mitigation = "none"
            job = QuantumJob.from_circuit(
                sampled.circuit,
                shots=sampled.shots,
                mitigation=mitigation,
                keep_circuit=self.keep_circuits,
                benchmark=sampled.benchmark,
            )
            job.arrival_time = t
            app = HybridApplication(quantum_job=job, arrival_time=t)
            apps.append(app)
        return apps
