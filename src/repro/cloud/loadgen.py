"""Synthetic cloud load generation (§8.2).

The paper monitored IBM's queues for ten days in November 2023 and found
arrival rates between 1100 and 2050 jobs/hour, averaging 1500 j/h, with a
diurnal pattern. The load generator reproduces that: a sinusoidal diurnal
rate profile bounded to the observed band, Poisson arrivals within it, and
hybrid applications drawn from the workload sampler (random algorithms,
normal widths, random shots, ~50 % requesting error mitigation).

Arrivals can be **streamed**: :meth:`LoadGenerator.iter_arrivals` yields
applications lazily in time order, so the simulator pulls the next arrival
on demand and a 100k+ job run never materializes the full arrival list.
:meth:`LoadGenerator.generate` is the eager view of the same stream (same
seeds, bit-identical applications).

Two arrival processes are available.  ``"poisson"`` (the default) is the
paper's model: exponential inter-arrivals at the (possibly diurnal)
nominal rate.  ``"mmpp"`` is a Markov-modulated Poisson process for
bursty / flash-crowd studies: a two-state continuous-time Markov chain
alternates between a *calm* state at the nominal rate and a *burst*
state at ``burst_rate_multiplier`` times it, with exponentially
distributed state holding times (``mean_calm_seconds`` /
``mean_burst_seconds``).  The mean rate stays close to nominal while
arrivals clump — the worst case for shard balancers and the scenario the
parallel scheduling engine is benchmarked under.  Both processes are
fully seeded and the default path draws exactly the random stream it
always did, so existing seeded scenarios are bit-identical.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from ..workloads.suite import WorkloadSampler
from .job import HybridApplication, QuantumJob
from .tenancy import TenantShare

__all__ = ["LoadGenerator", "diurnal_rate", "IBM_MEAN_RATE", "IBM_RATE_BAND"]

IBM_MEAN_RATE = 1500.0  # jobs/hour (paper's measured average)
IBM_RATE_BAND = (1100.0, 2050.0)  # jobs/hour (paper's measured range)

#: Mitigation presets jobs draw from (weighted toward the cheap stacks).
_MITIGATED_PRESETS = ["rem", "dd", "dd+rem", "zne", "zne+rem", "dd+zne+rem"]


def diurnal_rate(
    hour_of_day: float,
    mean_rate: float = IBM_MEAN_RATE,
    band: tuple[float, float] = IBM_RATE_BAND,
) -> float:
    """Sinusoidal day profile peaking mid-day, clipped to the rate band.

    ``band`` is expressed on the IBM scale; both the sinusoidal amplitude
    and the clip band rescale with ``mean_rate / IBM_MEAN_RATE``, so a
    scaled-up load profile keeps the measured *relative* diurnal swing
    instead of a flattened absolute one.
    """
    lo, hi = band
    scale = mean_rate / IBM_MEAN_RATE
    amplitude = (hi - lo) / 2.0 * scale
    rate = mean_rate + amplitude * np.sin((hour_of_day - 8.0) / 24.0 * 2 * np.pi)
    return float(np.clip(rate, lo * scale, hi * scale))


@dataclass
class LoadGenerator:
    """Draws timestamped hybrid applications."""

    mean_rate_per_hour: float = IBM_MEAN_RATE
    mitigation_fraction: float = 0.5
    mean_qubits: float = 6.0
    std_qubits: float = 3.0
    #: Width clamp for sampled jobs.  Raising ``min_qubits`` produces the
    #: skewed-wide streams only a subset of the fleet can serve — the
    #: stress regime for qubit-fit routing and shard rebalancing.
    min_qubits: int = 2
    max_qubits: int = 27
    diurnal: bool = True
    keep_circuits: bool = False
    #: Optional discrete shot grid (round numbers, as real users request);
    #: None keeps the paper's log-uniform continuum.
    shots_grid: tuple[int, ...] | None = None
    #: Optional benchmark-name subset passed through to the sampler.
    benchmarks: tuple[str, ...] | None = None
    #: When set, pre-sample this many distinct programs and draw every
    #: arrival from the pool (users resubmitting the same circuits, the
    #: regime the estimate cache exploits); circuit construction cost then
    #: scales with the pool, not the stream length.  None samples a fresh
    #: program per arrival (the paper's continuum).
    circuit_pool_size: int | None = None
    #: ``"poisson"`` (the paper's model) or ``"mmpp"`` (two-state
    #: Markov-modulated Poisson: calm at the nominal rate, bursts at
    #: ``burst_rate_multiplier`` times it).
    arrival_process: str = "poisson"
    burst_rate_multiplier: float = 6.0
    mean_burst_seconds: float = 120.0
    mean_calm_seconds: float = 600.0
    #: Optional multi-tenant mix (see :mod:`repro.cloud.tenancy`): each
    #: arrival is stamped with a tenant drawn by share from this tuple of
    #: :class:`TenantShare` entries.  Tenant draws come from a dedicated
    #: RNG substream, so ``tenants=None`` (the default) draws exactly the
    #: random stream it always did and stays bit-identical.
    tenants: tuple[TenantShare, ...] | None = None
    seed: int = 0

    def _make_sampler(self) -> WorkloadSampler:
        return WorkloadSampler(
            mean_qubits=self.mean_qubits,
            std_qubits=self.std_qubits,
            min_qubits=self.min_qubits,
            max_qubits=self.max_qubits,
            mitigation_fraction=self.mitigation_fraction,
            benchmarks=list(self.benchmarks) if self.benchmarks else None,
            shots_choices=self.shots_grid,
            seed=self.seed + 1,
        )

    def iter_arrivals(
        self, duration_seconds: float
    ) -> Iterator[HybridApplication]:
        """Lazily yield arrivals in [0, duration), in time order.

        Holds O(circuit_pool_size) state; with no pool, O(1) applications
        are alive at a time (whatever the consumer retains).
        """
        if self.arrival_process not in ("poisson", "mmpp"):
            raise ValueError(
                f"unknown arrival_process {self.arrival_process!r}; "
                "choose 'poisson' or 'mmpp'"
            )
        rng = np.random.default_rng(self.seed)
        sampler = self._make_sampler()
        # Tenant stamping draws from its own substream: the job/arrival
        # streams above never see these draws, so a tenanted run carries
        # the exact same circuits at the exact same times as the
        # untenanted run it is compared against.
        tenant_rng: np.random.Generator | None = None
        tenant_p: np.ndarray | None = None
        if self.tenants:
            shares = np.array([t.share for t in self.tenants], dtype=float)
            tenant_p = shares / shares.sum()
            tenant_rng = np.random.default_rng(
                np.random.SeedSequence(entropy=(self.seed, 0x7E4A47))
            )
        pool: list[QuantumJob] | None = None
        if self.circuit_pool_size:
            pool = [
                self._build_job(sampler.sample(), rng)
                for _ in range(self.circuit_pool_size)
            ]
        # MMPP modulation state.  The poisson path never touches it (and
        # draws no extra randomness), so default streams stay
        # bit-identical to the pre-MMPP generator.
        burst = False
        next_flip = float("inf")
        if self.arrival_process == "mmpp":
            if self.burst_rate_multiplier <= 1.0:
                raise ValueError("burst_rate_multiplier must be > 1")
            if self.mean_calm_seconds <= 0 or self.mean_burst_seconds <= 0:
                # A zero holding time pins simulated time at the flip
                # instant and the chain toggles forever without yielding.
                raise ValueError(
                    "mean_calm_seconds and mean_burst_seconds must be > 0"
                )
            next_flip = rng.exponential(self.mean_calm_seconds)
        t = 0.0
        while True:
            # Next arrival of the (possibly modulated) Poisson process.
            # A candidate past the next state flip is discarded and
            # redrawn from the flip instant at the new state's rate —
            # exact by memorylessness of the exponential.
            while True:
                hour = (t / 3600.0) % 24.0
                rate = (
                    diurnal_rate(hour, self.mean_rate_per_hour)
                    if self.diurnal
                    else self.mean_rate_per_hour
                )
                if burst:
                    rate *= self.burst_rate_multiplier
                candidate = t + rng.exponential(3600.0 / rate)
                if candidate < next_flip:
                    t = candidate
                    break
                t = next_flip
                burst = not burst
                next_flip = t + rng.exponential(
                    self.mean_burst_seconds
                    if burst
                    else self.mean_calm_seconds
                )
            if t >= duration_seconds:
                return
            if pool is not None:
                proto = pool[int(rng.integers(len(pool)))]
                # A resubmission of a pooled program: same structural
                # metrics (shared, content-addressed), fresh job identity.
                job = QuantumJob(
                    metrics=proto.metrics,
                    shots=proto.shots,
                    mitigation=proto.mitigation,
                    benchmark=proto.benchmark,
                    circuit=proto.circuit,
                )
            else:
                job = self._build_job(sampler.sample(), rng)
            if tenant_rng is not None:
                pick = int(tenant_rng.choice(len(self.tenants), p=tenant_p))
                job.tenant = self.tenants[pick].tenant
            job.arrival_time = t
            yield HybridApplication(quantum_job=job, arrival_time=t)

    def _build_job(self, sampled, rng: np.random.Generator) -> QuantumJob:
        if sampled.uses_mitigation:
            mitigation = _MITIGATED_PRESETS[
                int(rng.integers(len(_MITIGATED_PRESETS)))
            ]
        else:
            mitigation = "none"
        return QuantumJob.from_circuit(
            sampled.circuit,
            shots=sampled.shots,
            mitigation=mitigation,
            keep_circuit=self.keep_circuits,
            benchmark=sampled.benchmark,
        )

    def generate(self, duration_seconds: float) -> list[HybridApplication]:
        """All arrivals in [0, duration), sorted by arrival time."""
        return list(self.iter_arrivals(duration_seconds))
