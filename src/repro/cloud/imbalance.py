"""QPU load-imbalance trace synthesis (Fig. 2c).

The paper's week-long IBM queue monitor shows up to ~100x queue-size
differences across QPUs. The mechanism it identifies: users greedily pick
the highest-fidelity device. We reproduce the trace by simulating exactly
that behaviour — per-day arrivals routed by a softmax over device fidelity
rank — which yields the same orders-of-magnitude spread.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..backends.qpu import QPU

__all__ = ["QueueTrace", "simulate_queue_imbalance"]


@dataclass
class QueueTrace:
    """Per-QPU pending-job counts over a sequence of days."""

    qpu_names: list[str]
    days: list[str]
    queue_sizes: np.ndarray  # (num_days, num_qpus)

    def max_ratio(self, day: int) -> float:
        row = self.queue_sizes[day]
        nz = row[row > 0]
        if len(nz) == 0:
            return 1.0
        return float(row.max() / max(1.0, nz.min()))


def simulate_queue_imbalance(
    fleet: list[QPU],
    *,
    num_days: int = 7,
    jobs_per_day: int = 20_000,
    service_per_day: int = 4_000,
    greed: float = 8.0,
    seed: int = 0,
) -> QueueTrace:
    """Greedy fidelity-chasing arrival model.

    Each day: every QPU recalibrates (fidelity ranks shuffle), arrivals are
    split by a softmax of sharpness ``greed`` over quality rank, and each
    QPU serves up to ``service_per_day`` jobs from its queue. Queues of
    popular devices blow up; unpopular devices sit near zero — the Fig. 2(c)
    phenomenon.
    """
    rng = np.random.default_rng(seed)
    n = len(fleet)
    queues = np.zeros(n)
    rows = []
    days = []
    for day in range(num_days):
        for qpu in fleet:
            qpu.recalibrate()
        # User-visible "quality": inverse of calibration quality factor.
        quality = np.array([1.0 / q.calibration.quality_factor for q in fleet])
        pref = np.exp(greed * (quality - quality.max()))
        pref /= pref.sum()
        arrivals = rng.multinomial(jobs_per_day, pref)
        queues = queues + arrivals
        served = np.minimum(queues, service_per_day)
        queues = queues - served
        rows.append(queues.copy())
        days.append(f"day{day + 1}")
    return QueueTrace(
        qpu_names=[q.name for q in fleet],
        days=days,
        queue_sizes=np.array(rows),
    )
