"""Execution backends for concurrently-due scheduling cycles.

The paper's stage-runtime breakdown (Fig. 9c) shows NSGA-II dominating a
scheduling cycle, and a sharded fleet runs one cycle per shard — naturally
independent units of work once the optimization stage is a pure function
of its :class:`~repro.scheduler.cycle.OptimizationTask` snapshot.  A
:class:`CycleExecutor` runs one batch of such tasks and returns results
**in task order**, so the simulator folds them back deterministically no
matter which worker finished first.

Backends:

* :class:`SerialCycleExecutor` — run in the calling thread (the default;
  zero overhead, the reference semantics every other backend must match
  bit-for-bit).
* :class:`ThreadCycleExecutor` — a shared ``ThreadPoolExecutor``.  Cheap
  to spin up and exercises the full parallel control flow, but NSGA-II is
  Python-loop heavy, so the GIL caps the speedup; use it to *test* the
  parallel path more than to accelerate it.
* :class:`ProcessCycleExecutor` — a ``ProcessPoolExecutor`` (``fork``
  start method where the platform offers it, ``spawn`` otherwise — tasks
  and the worker function are picklable and importable by name either
  way).  This is the backend that actually buys wall-clock on multi-core
  hosts: each cycle's matrices are small to ship and the optimization
  stage is hundreds of milliseconds of pure NumPy work.

Two calling conventions share the backends:

* ``run(fn, tasks)`` — synchronous: block until every result is ready.
  Single-task batches always run inline on every backend, so the
  arrival-path cycles (one shard firing on its queue limit) never pay
  pool overhead.
* ``submit(fn, tasks) -> handle`` / ``result(handle)`` — asynchronous:
  ``submit`` hands the batch to the backend and returns immediately with
  an opaque :class:`CycleHandle`; ``result`` blocks until the batch is
  done and returns results in task order.  The serial backend resolves
  at submit time (there is no other thread to overlap with), pooled
  backends return pending futures.  ``submit`` never takes the
  single-task inline shortcut — the caller asked for overlap, and an
  inline run would serialize it; the simulator uses ``run`` whenever the
  fold is immediate.

Selection: pass a backend name (``"serial"`` / ``"thread"`` /
``"process"``, optionally ``"thread:8"`` for a worker count) or an
instance to the simulator, or set the ``CYCLE_EXECUTOR`` environment
variable to pick one fleet-wide (CI runs the tier-1 suite under
``CYCLE_EXECUTOR=thread`` so the parallel path is exercised on every
push).
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import (
    Executor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any

#: The worker-function shape every backend ships: one task in, one
#: result out (pure, picklable by name).
CycleFn = Callable[[Any], Any]

__all__ = [
    "CycleFn",
    "CycleExecutor",
    "CycleHandle",
    "SerialCycleExecutor",
    "ThreadCycleExecutor",
    "ProcessCycleExecutor",
    "make_cycle_executor",
]

#: Environment variable naming the default backend (e.g. ``thread:4``).
CYCLE_EXECUTOR_ENV = "CYCLE_EXECUTOR"


class CycleHandle:
    """Opaque receipt for a submitted batch; redeem via ``result()``.

    Exactly one of ``futures`` / ``results`` is set: pooled backends
    carry one future per task, the serial backend carries the already
    computed results.
    """

    __slots__ = ("futures", "results")

    def __init__(
        self,
        futures: list[Future[Any]] | None = None,
        results: list[Any] | None = None,
    ) -> None:
        self.futures = futures
        self.results = results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "resolved" if self.results is not None else "pending"
        return f"CycleHandle({state})"


class CycleExecutor:
    """Runs one batch of pure cycle tasks; results come back in order."""

    name = "base"

    def run(self, fn: CycleFn, tasks: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to every task, returning results in task order."""
        raise NotImplementedError

    def submit(self, fn: CycleFn, tasks: Sequence[Any]) -> CycleHandle:
        """Start a batch without waiting for it; redeem via ``result``."""
        raise NotImplementedError

    def result(self, handle: CycleHandle) -> list[Any]:
        """Block until a submitted batch is done; results in task order."""
        if handle.results is not None:
            return handle.results
        handle.results = [future.result() for future in handle.futures]
        handle.futures = None
        return handle.results

    def close(self) -> None:
        """Release worker resources (idempotent; pools rebuild lazily).

        Pooled backends wait for in-flight futures first, so a handle
        submitted before ``close`` can still be redeemed after it.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SerialCycleExecutor(CycleExecutor):
    """The reference backend: run every task in the calling thread."""

    name = "serial"

    def run(self, fn: CycleFn, tasks: Sequence[Any]) -> list[Any]:
        return [fn(task) for task in tasks]

    def submit(self, fn: CycleFn, tasks: Sequence[Any]) -> CycleHandle:
        # No second thread to overlap with: resolve inline at submit
        # time.  Simulated-time pipelining still works — the fold event
        # just finds the results already computed.
        return CycleHandle(results=self.run(fn, tasks))


class _PooledCycleExecutor(CycleExecutor):
    """Shared lazy-pool plumbing for the thread and process backends."""

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers
        self._pool: Executor | None = None

    def _make_pool(self) -> Executor:
        raise NotImplementedError

    def run(self, fn: CycleFn, tasks: Sequence[Any]) -> list[Any]:
        if len(tasks) <= 1:
            # Pool overhead buys nothing for a batch of one (the common
            # arrival-path case); inline execution is identical because
            # the tasks are pure.
            return [fn(task) for task in tasks]
        if self._pool is None:
            self._pool = self._make_pool()
        return list(self._pool.map(fn, tasks))

    def submit(self, fn: CycleFn, tasks: Sequence[Any]) -> CycleHandle:
        if not tasks:
            return CycleHandle(results=[])
        # Deliberately no single-task inline shortcut here: submit exists
        # so the event loop can overlap this batch with other work (and
        # with *other* in-flight batches), which an inline run would
        # forfeit.
        if self._pool is None:
            self._pool = self._make_pool()
        return CycleHandle(futures=[self._pool.submit(fn, task) for task in tasks])

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware on Linux)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


class ThreadCycleExecutor(_PooledCycleExecutor):
    """Thread-pool backend (GIL-bound; exercises the parallel path)."""

    name = "thread"

    def _make_pool(self) -> Executor:
        workers = self.max_workers or min(8, _available_cpus())
        return ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="cycle"
        )


class ProcessCycleExecutor(_PooledCycleExecutor):
    """Process-pool backend — real multi-core speedup for NSGA-II."""

    name = "process"

    def _make_pool(self) -> Executor:
        import multiprocessing

        workers = self.max_workers or _available_cpus()
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        return ProcessPoolExecutor(max_workers=workers, mp_context=ctx)


_EXECUTORS: dict[str, type[CycleExecutor]] = {
    SerialCycleExecutor.name: SerialCycleExecutor,
    ThreadCycleExecutor.name: ThreadCycleExecutor,
    ProcessCycleExecutor.name: ProcessCycleExecutor,
}


def make_cycle_executor(
    spec: str | CycleExecutor | None = None,
) -> CycleExecutor:
    """Resolve an executor spec (instance, name, ``name:workers``, or
    ``None`` for the ``CYCLE_EXECUTOR`` environment variable / serial)."""
    if isinstance(spec, CycleExecutor):
        return spec
    if spec is None:
        spec = os.environ.get(CYCLE_EXECUTOR_ENV) or SerialCycleExecutor.name
    name, _, workers = spec.partition(":")
    if name not in _EXECUTORS:
        raise KeyError(
            f"unknown cycle executor {name!r}; choose from {sorted(_EXECUTORS)}"
        )
    cls = _EXECUTORS[name]
    if cls is SerialCycleExecutor:
        return cls()
    return cls(max_workers=int(workers) if workers else None)
