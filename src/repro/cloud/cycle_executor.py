"""Execution backends for concurrently-due scheduling cycles.

The paper's stage-runtime breakdown (Fig. 9c) shows NSGA-II dominating a
scheduling cycle, and a sharded fleet runs one cycle per shard — naturally
independent units of work once the optimization stage is a pure function
of its :class:`~repro.scheduler.cycle.OptimizationTask` snapshot.  A
:class:`CycleExecutor` runs one batch of such tasks and returns results
**in task order**, so the simulator folds them back deterministically no
matter which worker finished first.

Backends:

* :class:`SerialCycleExecutor` — run in the calling thread (the default;
  zero overhead, the reference semantics every other backend must match
  bit-for-bit).
* :class:`ThreadCycleExecutor` — a shared ``ThreadPoolExecutor``.  Cheap
  to spin up and exercises the full parallel control flow, but NSGA-II is
  Python-loop heavy, so the GIL caps the speedup; use it to *test* the
  parallel path more than to accelerate it.
* :class:`ProcessCycleExecutor` — a ``ProcessPoolExecutor`` (``fork``
  start method where the platform offers it, ``spawn`` otherwise — tasks
  and the worker function are picklable and importable by name either
  way).  This is the backend that actually buys wall-clock on multi-core
  hosts: each cycle's matrices are small to ship and the optimization
  stage is hundreds of milliseconds of pure NumPy work.

Single-task batches always run inline on every backend: the arrival-path
cycles (one shard firing on its queue limit) never pay pool overhead, and
the results are identical by construction.

Selection: pass a backend name (``"serial"`` / ``"thread"`` /
``"process"``, optionally ``"thread:8"`` for a worker count) or an
instance to the simulator, or set the ``CYCLE_EXECUTOR`` environment
variable to pick one fleet-wide (CI runs the tier-1 suite under
``CYCLE_EXECUTOR=thread`` so the parallel path is exercised on every
push).
"""

from __future__ import annotations

import os
from collections.abc import Callable, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor

__all__ = [
    "CycleExecutor",
    "SerialCycleExecutor",
    "ThreadCycleExecutor",
    "ProcessCycleExecutor",
    "make_cycle_executor",
]

#: Environment variable naming the default backend (e.g. ``thread:4``).
CYCLE_EXECUTOR_ENV = "CYCLE_EXECUTOR"


class CycleExecutor:
    """Runs one batch of pure cycle tasks; results come back in order."""

    name = "base"

    def run(self, fn: Callable, tasks: Sequence) -> list:
        """Apply ``fn`` to every task, returning results in task order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent; pools rebuild lazily)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class SerialCycleExecutor(CycleExecutor):
    """The reference backend: run every task in the calling thread."""

    name = "serial"

    def run(self, fn: Callable, tasks: Sequence) -> list:
        return [fn(task) for task in tasks]


class _PooledCycleExecutor(CycleExecutor):
    """Shared lazy-pool plumbing for the thread and process backends."""

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers
        self._pool: Executor | None = None

    def _make_pool(self) -> Executor:
        raise NotImplementedError

    def run(self, fn: Callable, tasks: Sequence) -> list:
        if len(tasks) <= 1:
            # Pool overhead buys nothing for a batch of one (the common
            # arrival-path case); inline execution is identical because
            # the tasks are pure.
            return [fn(task) for task in tasks]
        if self._pool is None:
            self._pool = self._make_pool()
        return list(self._pool.map(fn, tasks))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def _available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware on Linux)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


class ThreadCycleExecutor(_PooledCycleExecutor):
    """Thread-pool backend (GIL-bound; exercises the parallel path)."""

    name = "thread"

    def _make_pool(self) -> Executor:
        workers = self.max_workers or min(8, _available_cpus())
        return ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="cycle"
        )


class ProcessCycleExecutor(_PooledCycleExecutor):
    """Process-pool backend — real multi-core speedup for NSGA-II."""

    name = "process"

    def _make_pool(self) -> Executor:
        import multiprocessing

        workers = self.max_workers or _available_cpus()
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        return ProcessPoolExecutor(max_workers=workers, mp_context=ctx)


_EXECUTORS = {
    SerialCycleExecutor.name: SerialCycleExecutor,
    ThreadCycleExecutor.name: ThreadCycleExecutor,
    ProcessCycleExecutor.name: ProcessCycleExecutor,
}


def make_cycle_executor(
    spec: str | CycleExecutor | None = None,
) -> CycleExecutor:
    """Resolve an executor spec (instance, name, ``name:workers``, or
    ``None`` for the ``CYCLE_EXECUTOR`` environment variable / serial)."""
    if isinstance(spec, CycleExecutor):
        return spec
    if spec is None:
        spec = os.environ.get(CYCLE_EXECUTOR_ENV) or SerialCycleExecutor.name
    name, _, workers = spec.partition(":")
    if name not in _EXECUTORS:
        raise KeyError(
            f"unknown cycle executor {name!r}; choose from {sorted(_EXECUTORS)}"
        )
    cls = _EXECUTORS[name]
    if cls is SerialCycleExecutor:
        return cls()
    return cls(max_workers=int(workers) if workers else None)
