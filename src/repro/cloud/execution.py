"""Ground-truth execution model of the simulated quantum cloud.

Given a job's (transpile-proxied) physical metrics, a QPU's calibration
snapshot, and the job's mitigation stack, produces the "real" fidelity and
runtimes the cloud simulator records — the role the patched FakeBackends
play in the paper (§8.2).

Fidelity follows the component-wise ESP model
(:func:`repro.simulation.esp.esp_components` at circuit level; reproduced
here from aggregate metrics so it scales to 130-qubit jobs), with each
mitigation technique attacking its error component:

======== ============================== =========================
stack    effect                          cost
======== ============================== =========================
rem      readout log-error x 0.12        classical post x ~3
dd       decoherence log-error x 0.40    extra 1q pulses (small)
zne      gate log-error x 0.45,          3x shots, folded circuits
         decoherence x 1.3
twirling gate log-error x 0.90           4x circuit instances
======== ============================== =========================

The residual factors are validated against the trajectory simulator on
small circuits in ``tests/test_execution_model.py`` — they are measured
properties of our own mitigation implementations, not free parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..backends.calibration import CalibrationData
from ..backends.models import QPUModel
from ..circuits.metrics import CircuitMetrics
from ..mitigation.stack import STANDARD_STACKS
from ..simulation.esp import esp_to_hellinger
from .job import QuantumJob
from .proxy import TranspileProxy

__all__ = ["ExecutionRecord", "ExecutionModel", "MITIGATION_EFFECTS"]

#: Residual fractions of each log-error component per technique, plus cost
#: multipliers. Validated against the trajectory simulator.
MITIGATION_EFFECTS: dict[str, dict[str, float]] = {
    "rem": {"readout": 0.12, "classical_mult": 3.0},
    "dd": {"decoherence": 0.40, "gate_add_frac": 0.04},
    "zne": {"gate": 0.45, "decoherence_mult": 1.3, "shot_mult": 3.0,
            "classical_mult": 1.5},
    "twirling": {"gate": 0.90, "shot_mult": 4.0, "classical_mult": 1.3},
}

#: Fixed per-job overheads (seconds). The setup charge covers job handoff,
#: binding, and control-electronics configuration — IBM jobs pay tens of
#: seconds of per-job overhead beyond raw shots, which is what makes the
#: cloud saturate at the paper's 1500 jobs/hour on ~8 QPUs.
QPU_SETUP_SECONDS = 10.0
SHOT_OVERHEAD_US = 400.0  # per-shot reset/readout dead time
CLASSICAL_BASE_SECONDS = 1.5  # transpile + packaging per circuit instance


@dataclass(frozen=True)
class ExecutionRecord:
    """The cloud's ground truth for one executed job."""

    fidelity: float
    quantum_seconds: float
    classical_pre_seconds: float
    classical_post_seconds: float

    @property
    def total_classical_seconds(self) -> float:
        return self.classical_pre_seconds + self.classical_post_seconds


class ExecutionModel:
    """Maps (job, calibration) -> ground-truth outcome, with noise."""

    def __init__(
        self,
        *,
        proxy: TranspileProxy | None = None,
        fidelity_noise_sigma: float = 0.04,
        runtime_noise_sigma: float = 0.02,
        seed: int | None = None,
    ) -> None:
        self.proxy = proxy or TranspileProxy()
        self.fidelity_noise_sigma = fidelity_noise_sigma
        self.runtime_noise_sigma = runtime_noise_sigma
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def log_error_components(
        self, metrics: CircuitMetrics, calibration: CalibrationData, model: QPUModel
    ) -> dict[str, float]:
        """Aggregate-metric version of :func:`esp_components`."""
        nm = calibration.noise_model
        phys_2q, phys_1q, duration_ns = self.proxy.physical_metrics(metrics, model)
        # The proxy is calibrated at the model's nominal gate speed; scale
        # the schedule by this device's actual (calibrated) 2q duration.
        if nm.gates_2q:
            speed = float(
                np.mean([g.duration_ns for g in nm.gates_2q.values()])
                / model.duration_2q_ns
            )
            duration_ns *= speed
        e2 = nm.mean_gate_error_2q()
        e1 = nm.mean_gate_error_1q()
        log_gate = phys_2q * math.log1p(-min(e2, 0.5)) + phys_1q * math.log1p(
            -min(e1, 0.5)
        )
        ero = nm.mean_readout_error()
        log_ro = metrics.num_measurements * math.log1p(-min(ero, 0.5))
        t1 = float(np.mean([q.t1_us for q in nm.qubits]))
        t2 = float(np.mean([q.t2_us for q in nm.qubits]))
        inv_tphi = max(0.0, 1.0 / t2 - 0.5 / t1)
        dur_us = duration_ns / 1000.0
        # Occupancy 0.25: qubits spend much of the schedule in computational-
        # basis populations or echoed by circuit structure, so the effective
        # exposure to T1/Tphi is well below the full critical path.
        log_decoh = -dur_us * metrics.num_qubits * 0.25 * (1.0 / t1 + inv_tphi)
        return {
            "gate": log_gate,
            "readout": log_ro,
            "decoherence": log_decoh,
            "duration_ns": duration_ns,
        }

    def mitigated_components(
        self, components: dict[str, float], mitigation: str
    ) -> tuple[dict[str, float], float, float]:
        """Apply the stack's effects; returns (components, shot_mult, classical_mult)."""
        techniques = STANDARD_STACKS.get(mitigation)
        if techniques is None:
            raise KeyError(f"unknown mitigation preset {mitigation!r}")
        comp = dict(components)
        shot_mult = 1.0
        classical_mult = 1.0
        for tech in techniques:
            eff = MITIGATION_EFFECTS[tech]
            if "readout" in eff:
                comp["readout"] *= eff["readout"]
            if "gate" in eff:
                comp["gate"] *= eff["gate"]
            if "decoherence" in eff:
                comp["decoherence"] *= eff["decoherence"]
            if "decoherence_mult" in eff:
                comp["decoherence"] *= eff["decoherence_mult"]
            if "gate_add_frac" in eff:  # DD pulses add a little gate error
                comp["gate"] += components["gate"] * eff["gate_add_frac"]
            shot_mult *= eff.get("shot_mult", 1.0)
            classical_mult *= eff.get("classical_mult", 1.0)
        return comp, shot_mult, classical_mult

    # ------------------------------------------------------------------
    def expected_fidelity(
        self, job: QuantumJob, calibration: CalibrationData, model: QPUModel
    ) -> float:
        """Noise-free expectation (used by tests and the oracle ablation)."""
        comp = self.log_error_components(job.metrics, calibration, model)
        comp, _, _ = self.mitigated_components(comp, job.mitigation)
        esp = math.exp(comp["gate"] + comp["readout"] + comp["decoherence"])
        return esp_to_hellinger(esp, job.num_qubits)

    def execute(
        self,
        job: QuantumJob,
        calibration: CalibrationData,
        model: QPUModel,
        rng: np.random.Generator | None = None,
    ) -> ExecutionRecord:
        """One noisy ground-truth execution."""
        rng = rng or self._rng
        raw = self.log_error_components(job.metrics, calibration, model)
        comp, shot_mult, classical_mult = self.mitigated_components(
            raw, job.mitigation
        )
        esp = math.exp(comp["gate"] + comp["readout"] + comp["decoherence"])
        fid = esp_to_hellinger(esp, job.num_qubits)
        fid *= float(np.exp(rng.normal(0.0, self.fidelity_noise_sigma)))
        fid = float(min(1.0, max(0.0, fid)))

        shots = job.shots * shot_mult
        # Per-shot dead time (reset/readout) runs on the same control
        # electronics as the gates, so it scales with the device's speed.
        nm = calibration.noise_model
        speed = 1.0
        if nm.gates_2q:
            speed = float(
                np.mean([g.duration_ns for g in nm.gates_2q.values()])
                / model.duration_2q_ns
            )
        per_shot_s = (raw["duration_ns"] / 1e9) + SHOT_OVERHEAD_US / 1e6 * speed
        quantum_s = QPU_SETUP_SECONDS * speed + shots * per_shot_s
        quantum_s *= float(np.exp(rng.normal(0.0, self.runtime_noise_sigma)))

        pre_s = CLASSICAL_BASE_SECONDS * (1.0 + job.metrics.size / 400.0)
        post_s = CLASSICAL_BASE_SECONDS * (classical_mult - 1.0) * (
            1.0 + job.num_qubits / 24.0
        )
        pre_s *= float(np.exp(rng.normal(0.0, self.runtime_noise_sigma)))
        post_s *= float(np.exp(rng.normal(0.0, self.runtime_noise_sigma)))
        return ExecutionRecord(
            fidelity=fid,
            quantum_seconds=float(quantum_s),
            classical_pre_seconds=float(pre_s),
            classical_post_seconds=float(post_s),
        )
