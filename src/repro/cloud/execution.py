"""Ground-truth execution model of the simulated quantum cloud.

Given a job's (transpile-proxied) physical metrics, a QPU's calibration
snapshot, and the job's mitigation stack, produces the "real" fidelity and
runtimes the cloud simulator records — the role the patched FakeBackends
play in the paper (§8.2).

Fidelity follows the component-wise ESP model
(:func:`repro.simulation.esp.esp_components` at circuit level; reproduced
here from aggregate metrics so it scales to 130-qubit jobs), with each
mitigation technique attacking its error component:

======== ============================== =========================
stack    effect                          cost
======== ============================== =========================
rem      readout log-error x 0.12        classical post x ~3
dd       decoherence log-error x 0.40    extra 1q pulses (small)
zne      gate log-error x 0.45,          3x shots, folded circuits
         decoherence x 1.3
twirling gate log-error x 0.90           4x circuit instances
======== ============================== =========================

The residual factors are validated against the trajectory simulator on
small circuits in ``tests/test_execution_model.py`` — they are measured
properties of our own mitigation implementations, not free parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..backends.calibration import CalibrationData
from ..backends.models import QPUModel
from ..circuits.metrics import CircuitMetrics
from ..mitigation.stack import STANDARD_STACKS
from ..simulation.esp import esp_to_hellinger
from .job import QuantumJob
from .proxy import TranspileProxy

__all__ = ["ExecutionRecord", "ExecutionModel", "MITIGATION_EFFECTS"]

#: Residual fractions of each log-error component per technique, plus cost
#: multipliers. Validated against the trajectory simulator.
MITIGATION_EFFECTS: dict[str, dict[str, float]] = {
    "rem": {"readout": 0.12, "classical_mult": 3.0},
    "dd": {"decoherence": 0.40, "gate_add_frac": 0.04},
    "zne": {"gate": 0.45, "decoherence_mult": 1.3, "shot_mult": 3.0,
            "classical_mult": 1.5},
    "twirling": {"gate": 0.90, "shot_mult": 4.0, "classical_mult": 1.3},
}

#: Fixed per-job overheads (seconds). The setup charge covers job handoff,
#: binding, and control-electronics configuration — IBM jobs pay tens of
#: seconds of per-job overhead beyond raw shots, which is what makes the
#: cloud saturate at the paper's 1500 jobs/hour on ~8 QPUs.
QPU_SETUP_SECONDS = 10.0
SHOT_OVERHEAD_US = 400.0  # per-shot reset/readout dead time
CLASSICAL_BASE_SECONDS = 1.5  # transpile + packaging per circuit instance


@dataclass(frozen=True)
class ExecutionRecord:
    """The cloud's ground truth for one executed job."""

    fidelity: float
    quantum_seconds: float
    classical_pre_seconds: float
    classical_post_seconds: float

    @property
    def total_classical_seconds(self) -> float:
        return self.classical_pre_seconds + self.classical_post_seconds


class ExecutionModel:
    """Maps (job, calibration) -> ground-truth outcome, with noise."""

    def __init__(
        self,
        *,
        proxy: TranspileProxy | None = None,
        fidelity_noise_sigma: float = 0.04,
        runtime_noise_sigma: float = 0.02,
        seed: int | None = None,
    ) -> None:
        self.proxy = proxy or TranspileProxy()
        self.fidelity_noise_sigma = fidelity_noise_sigma
        self.runtime_noise_sigma = runtime_noise_sigma
        self._rng = np.random.default_rng(seed)
        #: Content-addressed memo of log-error components, keyed on
        #: (metrics fingerprint, calibration epoch, model name). The epoch
        #: (qpu_name, cycle) changes on recalibration, so entries can never
        #: be served stale; :meth:`on_recalibration` drops them for memory.
        self._comp_cache: dict[tuple, dict[str, float]] = {}

    def on_recalibration(self, qpus=None) -> None:
        """Drop cached components (their calibration epochs just died)."""
        self._comp_cache.clear()

    # ------------------------------------------------------------------
    def log_error_components(
        self, metrics: CircuitMetrics, calibration: CalibrationData, model: QPUModel
    ) -> dict[str, float]:
        """Aggregate-metric version of :func:`esp_components` (memoized)."""
        return self.components_batch([metrics], calibration, model)[0]

    def components_batch(
        self,
        metrics_list: list[CircuitMetrics],
        calibration: CalibrationData,
        model: QPUModel,
    ) -> list[dict[str, float]]:
        """Log-error components for a whole pending set on one device.

        Uncached entries are computed in a single NumPy array pass; repeated
        circuit shapes (the common case in cloud streams) hit the memo.
        """
        keys = [
            (m.fingerprint, calibration.epoch, model.name) for m in metrics_list
        ]
        fresh: dict[tuple, CircuitMetrics] = {}
        for key, m in zip(keys, metrics_list):
            if key not in self._comp_cache:
                fresh.setdefault(key, m)
        if fresh:
            agg = calibration.aggregates()
            # The proxy is calibrated at the model's nominal gate speed;
            # scale schedules by the calibrated 2q duration.
            nm = calibration.noise_model
            speed = (
                agg.duration_2q_ns / model.duration_2q_ns if nm.gates_2q else 1.0
            )
            phys = np.array(
                [self.proxy.physical_metrics(m, model) for m in fresh.values()]
            )
            phys_2q, phys_1q, duration_ns = phys[:, 0], phys[:, 1], phys[:, 2]
            if nm.gates_2q:
                duration_ns = duration_ns * speed
            num_qubits = np.array([m.num_qubits for m in fresh.values()])
            num_meas = np.array([m.num_measurements for m in fresh.values()])
            log_gate = phys_2q * math.log1p(
                -min(agg.error_2q, 0.5)
            ) + phys_1q * math.log1p(-min(agg.error_1q, 0.5))
            log_ro = num_meas * math.log1p(-min(agg.readout_error, 0.5))
            inv_tphi = max(0.0, 1.0 / agg.t2_us - 0.5 / agg.t1_us)
            dur_us = duration_ns / 1000.0
            # Occupancy 0.25: qubits spend much of the schedule in
            # computational-basis populations or echoed by circuit
            # structure, so the effective exposure to T1/Tphi is well below
            # the full critical path.
            log_decoh = -dur_us * num_qubits * 0.25 * (
                1.0 / agg.t1_us + inv_tphi
            )
            for j, key in enumerate(fresh):
                self._comp_cache[key] = {
                    "gate": float(log_gate[j]),
                    "readout": float(log_ro[j]),
                    "decoherence": float(log_decoh[j]),
                    "duration_ns": float(duration_ns[j]),
                }
        return [self._comp_cache[key] for key in keys]

    def mitigated_components(
        self, components: dict[str, float], mitigation: str
    ) -> tuple[dict[str, float], float, float]:
        """Apply the stack's effects; returns (components, shot_mult, classical_mult)."""
        techniques = STANDARD_STACKS.get(mitigation)
        if techniques is None:
            raise KeyError(f"unknown mitigation preset {mitigation!r}")
        comp = dict(components)
        shot_mult = 1.0
        classical_mult = 1.0
        for tech in techniques:
            eff = MITIGATION_EFFECTS[tech]
            if "readout" in eff:
                comp["readout"] *= eff["readout"]
            if "gate" in eff:
                comp["gate"] *= eff["gate"]
            if "decoherence" in eff:
                comp["decoherence"] *= eff["decoherence"]
            if "decoherence_mult" in eff:
                comp["decoherence"] *= eff["decoherence_mult"]
            if "gate_add_frac" in eff:  # DD pulses add a little gate error
                comp["gate"] += components["gate"] * eff["gate_add_frac"]
            shot_mult *= eff.get("shot_mult", 1.0)
            classical_mult *= eff.get("classical_mult", 1.0)
        return comp, shot_mult, classical_mult

    # ------------------------------------------------------------------
    def expected_fidelity(
        self, job: QuantumJob, calibration: CalibrationData, model: QPUModel
    ) -> float:
        """Noise-free expectation (used by tests and the oracle ablation)."""
        comp = self.log_error_components(job.metrics, calibration, model)
        comp, _, _ = self.mitigated_components(comp, job.mitigation)
        esp = math.exp(comp["gate"] + comp["readout"] + comp["decoherence"])
        return esp_to_hellinger(esp, job.num_qubits)

    def execute(
        self,
        job: QuantumJob,
        calibration: CalibrationData,
        model: QPUModel,
        rng: np.random.Generator | None = None,
    ) -> ExecutionRecord:
        """One noisy ground-truth execution."""
        rng = rng or self._rng
        raw = self.log_error_components(job.metrics, calibration, model)
        comp, shot_mult, classical_mult = self.mitigated_components(
            raw, job.mitigation
        )
        esp = math.exp(comp["gate"] + comp["readout"] + comp["decoherence"])
        fid = esp_to_hellinger(esp, job.num_qubits)
        fid *= float(np.exp(rng.normal(0.0, self.fidelity_noise_sigma)))
        fid = float(min(1.0, max(0.0, fid)))

        shots = job.shots * shot_mult
        # Per-shot dead time (reset/readout) runs on the same control
        # electronics as the gates, so it scales with the device's speed.
        nm = calibration.noise_model
        speed = 1.0
        if nm.gates_2q:
            speed = calibration.aggregates().duration_2q_ns / model.duration_2q_ns
        per_shot_s = (raw["duration_ns"] / 1e9) + SHOT_OVERHEAD_US / 1e6 * speed
        quantum_s = QPU_SETUP_SECONDS * speed + shots * per_shot_s
        quantum_s *= float(np.exp(rng.normal(0.0, self.runtime_noise_sigma)))

        pre_s = CLASSICAL_BASE_SECONDS * (1.0 + job.metrics.size / 400.0)
        post_s = CLASSICAL_BASE_SECONDS * (classical_mult - 1.0) * (
            1.0 + job.num_qubits / 24.0
        )
        pre_s *= float(np.exp(rng.normal(0.0, self.runtime_noise_sigma)))
        post_s *= float(np.exp(rng.normal(0.0, self.runtime_noise_sigma)))
        return ExecutionRecord(
            fidelity=fid,
            quantum_seconds=float(quantum_s),
            classical_pre_seconds=float(pre_s),
            classical_post_seconds=float(post_s),
        )
