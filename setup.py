"""Setuptools shim: enables legacy editable installs (`pip install -e .`)
in environments without the `wheel` package (offline evaluation boxes).

All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
