"""Setuptools shim: enables legacy editable installs (`pip install -e .`)
in environments without the `wheel` package (offline evaluation boxes)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Qonductor reproduction: a cloud orchestrator for hybrid "
        "quantum-classical computing"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10", "networkx>=3.0"],
)
